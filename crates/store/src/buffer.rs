//! The buffer pool: a lock-striped sharded page cache with CLOCK
//! eviction and I/O accounting.
//!
//! Every table read goes through [`BufferPool::fetch`]. Frames are
//! partitioned into shards keyed by a hash of the [`PageId`], each shard
//! behind its own mutex, so concurrent fetches of different pages rarely
//! contend. Within a shard, eviction is CLOCK (second chance): O(1)
//! amortized instead of the O(n) least-recently-used scan a timestamped
//! map needs. On a miss, the disk read, the 8 KiB page copy (the
//! simulated transfer) and the optional miss penalty all happen *outside*
//! the shard lock, so a slow miss never blocks hits on other pages of the
//! same shard.
//!
//! Benchmarks read [`BufferPool::snapshot`] to report logical I/O next to
//! wall time, which is how we compare decompositions the way the paper
//! compares them on Oracle.
//!
//! Telemetry is kept *per shard* (hits/misses/evictions live next to each
//! shard's mutex): [`BufferPool::snapshot`] sums them, and
//! [`BufferPool::shard_stats`] exposes the per-shard breakdown — shard
//! occupancy and traffic skew are exactly what the CLI `:stats` view and
//! the metrics registry ([`BufferPool::export_metrics`]) report.

use crate::fault::{MAX_READ_ATTEMPTS, RETRY_BACKOFF_BASE_NS};
use crate::page::{Disk, Page, PageId};
use parking_lot::Mutex;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use xkw_obs::Registry;

/// Distinguishes pools for the thread-local counters below; never reused.
static NEXT_POOL_ID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Per-thread (hits, misses, retries) per pool id. Keyed by id rather
    /// than address so a pool dropped and reallocated at the same address
    /// cannot inherit a previous pool's counts.
    static LOCAL_IO: RefCell<HashMap<u64, (u64, u64, u64)>> = RefCell::new(HashMap::new());
}

/// Simulated latencies at or above this park the thread instead of
/// spinning: a real page transfer blocks on the device without consuming
/// the CPU, so concurrent queries overlap their waits. Below it, sleep
/// granularity would distort the model, so short waits still spin.
const PARK_THRESHOLD_NS: u64 = 100_000;

/// Waits out a simulated latency of `ns` nanoseconds. Long waits park
/// (model: blocked on the device — other threads keep running), short
/// waits busy-spin (model: transfer shorter than scheduler granularity).
pub fn simulate_latency(ns: u64) {
    if ns == 0 {
        return;
    }
    if ns >= PARK_THRESHOLD_NS {
        std::thread::sleep(std::time::Duration::from_nanos(ns));
    } else {
        let start = std::time::Instant::now();
        while (start.elapsed().as_nanos() as u64) < ns {
            std::hint::spin_loop();
        }
    }
}

/// A page the pool could not produce: every physical read attempt failed
/// verification (or the page was already quarantined). Carries the page
/// id and the attempts spent; the table layer decorates it with the
/// table name into [`crate::StoreError::CorruptPage`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageFaultError {
    /// The unreadable page.
    pub page: u32,
    /// Physical read attempts spent before giving up (0 = the page was
    /// already quarantined and the fetch failed fast).
    pub attempts: u32,
}

impl std::fmt::Display for PageFaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.attempts == 0 {
            write!(f, "page {} is quarantined", self.page)
        } else {
            write!(
                f,
                "page {} failed verification after {} read attempts",
                self.page, self.attempts
            )
        }
    }
}

impl std::error::Error for PageFaultError {}

/// A point-in-time copy of the I/O counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoSnapshot {
    /// Pages served from the pool.
    pub hits: u64,
    /// Pages copied in from disk.
    pub misses: u64,
}

impl IoSnapshot {
    /// Total logical page requests.
    pub fn logical(&self) -> u64 {
        self.hits + self.misses
    }

    /// Counter-wise difference (`self - earlier`).
    pub fn since(&self, earlier: IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
        }
    }
}

/// One resident frame of a shard.
struct Slot {
    id: PageId,
    page: Page,
    /// The CLOCK reference bit: set on every access, cleared when the
    /// hand sweeps past; a frame is evicted only when found clear.
    referenced: bool,
}

/// A shard's frames: page → slot map plus the CLOCK state.
struct Shard {
    capacity: usize,
    map: HashMap<PageId, usize>,
    slots: Vec<Slot>,
    hand: usize,
}

impl Shard {
    fn new(capacity: usize) -> Self {
        Shard {
            capacity,
            map: HashMap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            hand: 0,
        }
    }

    /// Installs `page` under `id`, evicting via CLOCK if at capacity.
    /// Returns whether an eviction happened.
    fn insert(&mut self, id: PageId, page: Page) -> bool {
        if self.slots.len() < self.capacity {
            let slot = self.slots.len();
            self.slots.push(Slot {
                id,
                page,
                referenced: true,
            });
            self.map.insert(id, slot);
            return false;
        }
        // Second chance: clear reference bits until an unreferenced
        // frame comes under the hand. Terminates within two sweeps.
        loop {
            let hand = self.hand;
            self.hand = (hand + 1) % self.slots.len();
            let slot = &mut self.slots[hand];
            if slot.referenced {
                slot.referenced = false;
            } else {
                let victim = slot.id;
                slot.id = id;
                slot.page = page;
                slot.referenced = true;
                self.map.remove(&victim);
                self.map.insert(id, hand);
                return true;
            }
        }
    }
}

/// One lock stripe: a shard's frames plus its telemetry. Counters sit
/// beside the mutex they describe so a fetch only ever touches one
/// cache-line neighborhood, and per-shard traffic can be reported
/// without summing thread-locals.
struct ShardCell {
    frames: Mutex<Shard>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ShardCell {
    fn new(capacity: usize) -> Self {
        ShardCell {
            frames: Mutex::new(Shard::new(capacity)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }
}

/// A point-in-time copy of one shard's telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Pages this shard served from memory.
    pub hits: u64,
    /// Pages this shard read through to disk.
    pub misses: u64,
    /// Frames this shard evicted.
    pub evictions: u64,
    /// Pages currently resident in this shard.
    pub resident: usize,
    /// Frame budget of this shard.
    pub capacity: usize,
}

/// A sharded CLOCK buffer pool over a [`Disk`].
pub struct BufferPool {
    id: u64,
    capacity: usize,
    /// Power-of-two length; a page maps to a shard by hash.
    shards: Vec<ShardCell>,
    /// Simulated per-miss transfer latency in nanoseconds (0 = off).
    miss_penalty_ns: AtomicU64,
}

impl BufferPool {
    /// Creates a pool holding at most `capacity` pages, with a shard
    /// count picked from the capacity (one shard per 32 frames, capped
    /// at 16).
    pub fn new(capacity: usize) -> Self {
        Self::with_shards(capacity, (capacity / 32).clamp(1, 16))
    }

    /// Creates a pool with an explicit shard count (rounded up to a
    /// power of two, clamped to `1..=capacity`). Frames are split evenly
    /// across shards; the effective capacity is rounded up to a multiple
    /// of the shard count.
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        let nshards = shards.clamp(1, capacity).next_power_of_two();
        let per_shard = capacity.div_ceil(nshards);
        Self {
            id: NEXT_POOL_ID.fetch_add(1, Ordering::Relaxed),
            capacity,
            shards: (0..nshards).map(|_| ShardCell::new(per_shard)).collect(),
            miss_penalty_ns: AtomicU64::new(0),
        }
    }

    /// Sets a simulated I/O latency charged on every pool miss. The
    /// in-memory page copy alone under-represents a real buffer-manager
    /// miss; experiments that model a disk-resident database (as in the
    /// paper's Oracle setup) set this so that working sets larger than
    /// the pool actually hurt. Latencies of scheduler granularity and up
    /// park the thread (blocked-on-device model: concurrent queries
    /// overlap their transfers), shorter ones busy-wait.
    pub fn set_miss_penalty(&self, penalty: std::time::Duration) {
        self.miss_penalty_ns
            .store(penalty.as_nanos() as u64, Ordering::Relaxed);
    }

    #[inline]
    fn shard_of(&self, id: PageId) -> &ShardCell {
        // Fibonacci multiplicative hash; shard count is a power of two.
        let h = (id.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33;
        &self.shards[h as usize & (self.shards.len() - 1)]
    }

    /// Fetches a page, reading through to `disk` on a miss.
    ///
    /// # Panics
    /// Panics if the page is unreadable (corruption that survived every
    /// retry). Fault-tolerant callers use [`BufferPool::try_fetch`].
    pub fn fetch(&self, disk: &Disk, id: PageId) -> Page {
        self.try_fetch(disk, id).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fetches a page, reading through to `disk` on a miss, with bounded
    /// retry against the disk's fault layer.
    ///
    /// The miss path makes up to [`MAX_READ_ATTEMPTS`] physical read
    /// attempts. Failed attempts (transient faults, checksum mismatches)
    /// back off exponentially with deterministic seeded jitter; the
    /// backoff is sleep-parked like the miss penalty, so retrying threads
    /// overlap their waits instead of serializing. A page that exhausts
    /// its attempts is quarantined — later fetches fail fast without
    /// re-paying the backoff.
    ///
    /// # Errors
    /// [`PageFaultError`] when every attempt failed verification or the
    /// page is quarantined. With a disarmed fault layer this never
    /// errors, and the extra cost is one relaxed atomic load per miss.
    pub fn try_fetch(&self, disk: &Disk, id: PageId) -> Result<Page, PageFaultError> {
        let shard = self.shard_of(id);
        {
            let mut f = shard.frames.lock();
            if let Some(&slot) = f.map.get(&id) {
                f.slots[slot].referenced = true;
                let page = f.slots[slot].page.clone();
                drop(f);
                shard.hits.fetch_add(1, Ordering::Relaxed);
                self.record_local(true);
                return Ok(page);
            }
        }
        // Miss: the transfer (disk read + page copy) happens outside the
        // shard lock, so it never blocks hits on other resident pages.
        let faults = disk.faults();
        if faults.is_quarantined(id.0) {
            return Err(PageFaultError {
                page: id.0,
                attempts: 0,
            });
        }
        let mut attempt = 0u32;
        let (copied, extra_ns) = loop {
            match disk.read_checked(id, attempt) {
                Ok((from_disk, extra_ns)) => {
                    break (std::sync::Arc::new(*from_disk) as Page, extra_ns);
                }
                Err(_) => {
                    attempt += 1;
                    if attempt >= MAX_READ_ATTEMPTS {
                        faults.quarantine(id.0);
                        return Err(PageFaultError {
                            page: id.0,
                            attempts: attempt,
                        });
                    }
                    faults.count_retry();
                    self.record_local_retry();
                    // Exponential backoff with seeded jitter, floored at
                    // the park threshold so waiting threads sleep.
                    let base = RETRY_BACKOFF_BASE_NS << (attempt - 1);
                    let backoff = ((base as f64 * faults.jitter(id.0, attempt)) as u64)
                        .max(PARK_THRESHOLD_NS);
                    if xkw_obs::enabled() {
                        xkw_obs::global()
                            .histogram("xkw_retry_backoff_ns")
                            .observe(backoff);
                    }
                    simulate_latency(backoff);
                }
            }
        };
        {
            let mut f = shard.frames.lock();
            // A racing fetch of the same page may have installed it
            // while we copied; both fetches did a real transfer, so both
            // count as misses, but only one frame is kept.
            if !f.map.contains_key(&id) && f.insert(id, copied.clone()) {
                shard.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.misses.fetch_add(1, Ordering::Relaxed);
        self.record_local(false);
        simulate_latency(self.miss_penalty_ns.load(Ordering::Relaxed) + extra_ns);
        Ok(copied)
    }

    /// Current counters, aggregated over every shard and thread.
    pub fn snapshot(&self) -> IoSnapshot {
        self.shards
            .iter()
            .fold(IoSnapshot::default(), |s, c| IoSnapshot {
                hits: s.hits + c.hits.load(Ordering::Relaxed),
                misses: s.misses + c.misses.load(Ordering::Relaxed),
            })
    }

    /// Frames evicted since the pool was created (survives
    /// [`BufferPool::clear`], like the hit/miss counters).
    pub fn evictions(&self) -> u64 {
        self.shards
            .iter()
            .map(|c| c.evictions.load(Ordering::Relaxed))
            .sum()
    }

    /// Per-shard telemetry, in shard order: traffic counters plus the
    /// current occupancy against the shard's frame budget.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|c| {
                let f = c.frames.lock();
                ShardStats {
                    hits: c.hits.load(Ordering::Relaxed),
                    misses: c.misses.load(Ordering::Relaxed),
                    evictions: c.evictions.load(Ordering::Relaxed),
                    resident: f.slots.len(),
                    capacity: f.capacity,
                }
            })
            .collect()
    }

    /// Publishes the pool's state into `registry` as gauges:
    /// `xkw_pool_{capacity,resident,hits,misses,evictions}` plus
    /// per-shard `xkw_pool_shard_*{shard="i"}` series. Pull-based — call
    /// it when exporting; nothing on the fetch path touches the registry.
    pub fn export_metrics(&self, registry: &Registry) {
        let snap = self.snapshot();
        registry
            .gauge("xkw_pool_capacity")
            .set(self.capacity as u64);
        registry
            .gauge("xkw_pool_resident")
            .set(self.resident() as u64);
        registry.gauge("xkw_pool_hits").set(snap.hits);
        registry.gauge("xkw_pool_misses").set(snap.misses);
        registry.gauge("xkw_pool_evictions").set(self.evictions());
        for (i, s) in self.shard_stats().iter().enumerate() {
            registry
                .gauge(&format!("xkw_pool_shard_hits{{shard=\"{i}\"}}"))
                .set(s.hits);
            registry
                .gauge(&format!("xkw_pool_shard_misses{{shard=\"{i}\"}}"))
                .set(s.misses);
            registry
                .gauge(&format!("xkw_pool_shard_evictions{{shard=\"{i}\"}}"))
                .set(s.evictions);
            registry
                .gauge(&format!("xkw_pool_shard_resident{{shard=\"{i}\"}}"))
                .set(s.resident as u64);
        }
    }

    fn record_local(&self, hit: bool) {
        LOCAL_IO.with(|m| {
            let mut m = m.borrow_mut();
            let entry = m.entry(self.id).or_default();
            if hit {
                entry.0 += 1;
            } else {
                entry.1 += 1;
            }
        });
    }

    fn record_local_retry(&self) {
        LOCAL_IO.with(|m| {
            m.borrow_mut().entry(self.id).or_default().2 += 1;
        });
    }

    /// The calling thread's cumulative hit/miss counts against this pool.
    ///
    /// Unlike [`BufferPool::snapshot`], which aggregates every thread,
    /// deltas of this snapshot attribute I/O to the work the calling
    /// thread actually performed — meaningful even while other queries
    /// run concurrently on the same pool.
    pub fn local_snapshot(&self) -> IoSnapshot {
        LOCAL_IO.with(|m| {
            let (hits, misses, _) = m.borrow().get(&self.id).copied().unwrap_or((0, 0, 0));
            IoSnapshot { hits, misses }
        })
    }

    /// The calling thread's cumulative failed-read-attempt retries
    /// against this pool (kept separate from [`IoSnapshot`]: retries are
    /// fault-recovery work, not logical I/O).
    pub fn local_retries(&self) -> u64 {
        LOCAL_IO.with(|m| m.borrow().get(&self.id).map_or(0, |e| e.2))
    }

    /// Empties the pool (e.g. between benchmark runs for a cold start),
    /// resetting every shard's frames *and* its CLOCK hand/reference
    /// state, so a post-clear run replays eviction decisions from
    /// scratch. The hit/miss/eviction counters intentionally survive —
    /// they are cumulative pool telemetry, not cache state; benchmarks
    /// diff [`BufferPool::snapshot`] around each run instead.
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut f = shard.frames.lock();
            f.map.clear();
            f.slots.clear();
            f.hand = 0;
        }
    }

    /// The configured capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of lock stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Pages currently resident, summed across shards.
    pub fn resident(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.frames.lock().slots.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PAGE_U32S;

    fn disk_with(n: usize) -> Disk {
        let d = Disk::new();
        for i in 0..n {
            let mut p = [0u32; PAGE_U32S];
            p[0] = i as u32;
            d.append(p);
        }
        d
    }

    #[test]
    fn hit_after_miss() {
        let d = disk_with(1);
        let pool = BufferPool::new(4);
        pool.fetch(&d, PageId(0));
        pool.fetch(&d, PageId(0));
        let s = pool.snapshot();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 1);
        assert_eq!(s.logical(), 2);
    }

    #[test]
    fn clock_gives_second_chance() {
        let d = disk_with(3);
        // Single shard so the CLOCK order is exact.
        let pool = BufferPool::with_shards(2, 1);
        pool.fetch(&d, PageId(0)); // miss, ref(0)=1
        pool.fetch(&d, PageId(1)); // miss, ref(1)=1
        pool.fetch(&d, PageId(2)); // miss: sweep clears both bits, evicts 0
        assert_eq!(pool.evictions(), 1);
        pool.fetch(&d, PageId(1)); // hit: 1 survived on its second chance
        pool.fetch(&d, PageId(0)); // miss: 0 was the victim
        let s = pool.snapshot();
        assert_eq!(s.misses, 4);
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn clock_protects_rereferenced_page() {
        let d = disk_with(5);
        let pool = BufferPool::with_shards(3, 1);
        pool.fetch(&d, PageId(0)); // miss, slots [0,1,2] fill
        pool.fetch(&d, PageId(1));
        pool.fetch(&d, PageId(2));
        pool.fetch(&d, PageId(3)); // miss: full sweep clears all, evicts 0; hand at slot 1
        pool.fetch(&d, PageId(1)); // hit: re-reference 1
        pool.fetch(&d, PageId(4)); // miss: hand clears 1's fresh bit, evicts 2 (bit clear)
        pool.fetch(&d, PageId(1)); // hit: 1 survived because it was re-referenced
        let s = pool.snapshot();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 5);
        assert_eq!(pool.evictions(), 2);
    }

    #[test]
    fn clear_forces_misses_and_resets_clock_state() {
        let d = disk_with(2);
        let pool = BufferPool::with_shards(2, 1);
        pool.fetch(&d, PageId(0));
        pool.fetch(&d, PageId(1));
        let evictions_before = pool.evictions();
        pool.clear();
        assert_eq!(pool.resident(), 0);
        // Cold again: both pages miss, and the refilled shard evicts from
        // a fresh hand — counters survive, frames and clock state do not.
        pool.fetch(&d, PageId(0));
        pool.fetch(&d, PageId(1));
        assert_eq!(pool.snapshot().misses, 4);
        assert_eq!(pool.evictions(), evictions_before);
        assert_eq!(pool.resident(), 2);
    }

    #[test]
    fn snapshot_since() {
        let d = disk_with(2);
        let pool = BufferPool::new(2);
        pool.fetch(&d, PageId(0));
        let before = pool.snapshot();
        pool.fetch(&d, PageId(0));
        pool.fetch(&d, PageId(1));
        let delta = pool.snapshot().since(before);
        assert_eq!(delta, IoSnapshot { hits: 1, misses: 1 });
    }

    #[test]
    fn local_snapshot_is_per_thread() {
        let d = disk_with(4);
        let pool = BufferPool::new(4);
        let before = pool.local_snapshot();
        pool.fetch(&d, PageId(0)); // miss
        pool.fetch(&d, PageId(0)); // hit
        std::thread::scope(|s| {
            s.spawn(|| {
                // Another thread's work: 2 misses, 1 hit — global only.
                pool.fetch(&d, PageId(1));
                pool.fetch(&d, PageId(2));
                pool.fetch(&d, PageId(1));
                let theirs = pool.local_snapshot();
                assert_eq!(theirs, IoSnapshot { hits: 1, misses: 2 });
            });
        });
        let mine = pool.local_snapshot().since(before);
        assert_eq!(mine, IoSnapshot { hits: 1, misses: 1 });
        assert_eq!(pool.snapshot(), IoSnapshot { hits: 2, misses: 3 });
    }

    #[test]
    fn local_snapshot_distinguishes_pools() {
        let d = disk_with(2);
        let a = BufferPool::new(2);
        let b = BufferPool::new(2);
        a.fetch(&d, PageId(0));
        a.fetch(&d, PageId(0));
        b.fetch(&d, PageId(1));
        assert_eq!(a.local_snapshot(), IoSnapshot { hits: 1, misses: 1 });
        assert_eq!(b.local_snapshot(), IoSnapshot { hits: 0, misses: 1 });
    }

    #[test]
    fn fetched_content_matches_disk() {
        let d = disk_with(2);
        let pool = BufferPool::new(2);
        assert_eq!(pool.fetch(&d, PageId(1))[0], 1);
        assert_eq!(pool.fetch(&d, PageId(0))[0], 0);
    }

    #[test]
    fn sharded_pool_serves_correct_pages() {
        let d = disk_with(64);
        let pool = BufferPool::with_shards(16, 4);
        assert_eq!(pool.shard_count(), 4);
        // Two passes over a working set larger than the pool: every page
        // always comes back with its own content, evictions happen, and
        // residency never exceeds the per-shard budgets.
        for pass in 0..2 {
            for i in 0..64u32 {
                assert_eq!(pool.fetch(&d, PageId(i))[0], i, "pass {pass}");
            }
        }
        assert!(pool.evictions() > 0);
        assert!(pool.resident() <= 16);
        assert_eq!(pool.snapshot().logical(), 128);
    }

    #[test]
    fn concurrent_fetches_account_every_request() {
        let d = disk_with(32);
        let pool = BufferPool::with_shards(8, 4);
        const THREADS: u64 = 4;
        const FETCHES: u64 = 200;
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let (pool, d) = (&pool, &d);
                s.spawn(move || {
                    let mut x = t + 1;
                    for _ in 0..FETCHES {
                        // Cheap xorshift over the 32-page working set.
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let id = PageId((x % 32) as u32);
                        assert_eq!(pool.fetch(d, id)[0], id.0);
                    }
                    assert_eq!(pool.local_snapshot().logical(), FETCHES);
                });
            }
        });
        assert_eq!(pool.snapshot().logical(), THREADS * FETCHES);
    }

    #[test]
    fn shard_stats_sum_to_pool_totals() {
        let d = disk_with(64);
        let pool = BufferPool::with_shards(16, 4);
        for pass in 0..2 {
            for i in 0..64u32 {
                assert_eq!(pool.fetch(&d, PageId(i))[0], i, "pass {pass}");
            }
        }
        let shards = pool.shard_stats();
        assert_eq!(shards.len(), pool.shard_count());
        let hits: u64 = shards.iter().map(|s| s.hits).sum();
        let misses: u64 = shards.iter().map(|s| s.misses).sum();
        let evictions: u64 = shards.iter().map(|s| s.evictions).sum();
        let resident: usize = shards.iter().map(|s| s.resident).sum();
        assert_eq!(
            (hits, misses),
            (pool.snapshot().hits, pool.snapshot().misses)
        );
        assert_eq!(evictions, pool.evictions());
        assert_eq!(resident, pool.resident());
        assert!(shards.iter().all(|s| s.resident <= s.capacity));
    }

    #[test]
    fn export_metrics_publishes_gauges() {
        let d = disk_with(8);
        let pool = BufferPool::with_shards(4, 2);
        for i in 0..8u32 {
            pool.fetch(&d, PageId(i));
        }
        let registry = xkw_obs::Registry::new();
        pool.export_metrics(&registry);
        assert_eq!(registry.gauge("xkw_pool_capacity").get(), 4);
        assert_eq!(registry.gauge("xkw_pool_misses").get(), 8);
        let shard_hits: u64 = (0..pool.shard_count())
            .map(|i| {
                registry
                    .gauge(&format!("xkw_pool_shard_hits{{shard=\"{i}\"}}"))
                    .get()
            })
            .sum();
        assert_eq!(shard_hits, pool.snapshot().hits);
        assert!(registry.render_prometheus().contains("xkw_pool_evictions"));
    }

    #[test]
    fn shard_count_is_clamped() {
        assert_eq!(BufferPool::with_shards(4, 64).shard_count(), 4);
        assert_eq!(BufferPool::with_shards(1024, 0).shard_count(), 1);
        assert_eq!(BufferPool::with_shards(1024, 5).shard_count(), 8);
        assert_eq!(BufferPool::new(2048).shard_count(), 16);
        assert_eq!(BufferPool::new(16).shard_count(), 1);
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::fault::{FaultKind, FaultSpec, FaultTarget};
    use crate::page::PAGE_U32S;

    fn disk_with(n: usize) -> Disk {
        let d = Disk::new();
        for i in 0..n {
            let mut p = [0u32; PAGE_U32S];
            p[0] = i as u32;
            d.append(p);
        }
        d
    }

    #[test]
    fn transient_faults_recover_via_retries() {
        let d = disk_with(4);
        d.faults().install(FaultSpec::new(42).rule(
            FaultKind::TransientRead,
            FaultTarget::All,
            1.0,
        ));
        let pool = BufferPool::new(4);
        for i in 0..4u32 {
            assert_eq!(pool.try_fetch(&d, PageId(i)).unwrap()[0], i);
        }
        // p=1 transient: every miss retried MAX_READ_ATTEMPTS-1 times.
        let expected = 4 * u64::from(MAX_READ_ATTEMPTS - 1);
        assert_eq!(d.faults().snapshot().retries, expected);
        assert_eq!(pool.local_retries(), expected);
        // Hits pay no retries.
        pool.try_fetch(&d, PageId(0)).unwrap();
        assert_eq!(pool.local_retries(), expected);
        assert_eq!(pool.snapshot(), IoSnapshot { hits: 1, misses: 4 });
    }

    #[test]
    fn corrupt_pages_quarantine_and_fail_fast() {
        let d = disk_with(2);
        d.corrupt_page(PageId(1));
        let pool = BufferPool::new(4);
        assert_eq!(pool.try_fetch(&d, PageId(0)).unwrap()[0], 0);
        let err = pool.try_fetch(&d, PageId(1)).unwrap_err();
        assert_eq!(err.page, 1);
        assert_eq!(err.attempts, MAX_READ_ATTEMPTS);
        assert!(err.to_string().contains("page 1"));
        assert_eq!(d.faults().snapshot().quarantined, 1);
        // Second fetch fails fast without re-paying retries.
        let before = d.faults().snapshot().retries;
        let err = pool.try_fetch(&d, PageId(1)).unwrap_err();
        assert_eq!(err.attempts, 0);
        assert_eq!(d.faults().snapshot().retries, before);
        // Failed fetches never count as logical I/O.
        assert_eq!(pool.snapshot().misses, 1);
    }

    #[test]
    #[should_panic(expected = "failed verification")]
    fn infallible_fetch_panics_on_corruption() {
        let d = disk_with(1);
        d.corrupt_page(PageId(0));
        let pool = BufferPool::new(2);
        pool.fetch(&d, PageId(0));
    }

    #[test]
    fn faulty_reads_are_deterministic_across_thread_counts() {
        for threads in [1usize, 2, 8] {
            let d = disk_with(16);
            d.faults().install(FaultSpec::new(7).rule(
                FaultKind::TransientRead,
                FaultTarget::All,
                0.5,
            ));
            let pool = BufferPool::new(16);
            std::thread::scope(|s| {
                for t in 0..threads {
                    let (pool, d) = (&pool, &d);
                    s.spawn(move || {
                        for i in (t..16).step_by(threads) {
                            assert_eq!(pool.try_fetch(d, PageId(i as u32)).unwrap()[0], i as u32);
                        }
                    });
                }
            });
            // Injection decisions are per (seed, page, attempt): the
            // total retry count is identical for every interleaving.
            let retries = d.faults().snapshot().retries;
            assert_eq!(
                retries,
                {
                    let d2 = disk_with(16);
                    d2.faults().install(FaultSpec::new(7).rule(
                        FaultKind::TransientRead,
                        FaultTarget::All,
                        0.5,
                    ));
                    let p2 = BufferPool::new(16);
                    for i in 0..16u32 {
                        p2.try_fetch(&d2, PageId(i)).unwrap();
                    }
                    d2.faults().snapshot().retries
                },
                "threads={threads}"
            );
        }
    }
}

#[cfg(test)]
mod penalty_tests {
    use super::*;
    use crate::page::PAGE_U32S;

    #[test]
    fn miss_penalty_slows_misses_only() {
        let d = Disk::new();
        d.append([0u32; PAGE_U32S]);
        let pool = BufferPool::new(2);
        pool.set_miss_penalty(std::time::Duration::from_micros(300));
        let t = std::time::Instant::now();
        pool.fetch(&d, PageId(0)); // miss: pays penalty
        let miss_time = t.elapsed();
        let t = std::time::Instant::now();
        pool.fetch(&d, PageId(0)); // hit: free
        let hit_time = t.elapsed();
        assert!(miss_time >= std::time::Duration::from_micros(300));
        assert!(hit_time < miss_time);
    }

    #[test]
    fn parked_misses_overlap_across_threads() {
        let d = Disk::new();
        for _ in 0..8 {
            d.append([0u32; PAGE_U32S]);
        }
        let pool = BufferPool::new(8);
        pool.set_miss_penalty(std::time::Duration::from_millis(2));
        let t = std::time::Instant::now();
        std::thread::scope(|s| {
            for i in 0..4u32 {
                let (pool, d) = (&pool, &d);
                s.spawn(move || {
                    pool.fetch(d, PageId(i));
                });
            }
        });
        // Four 2 ms transfers in parallel: far less than the 8 ms a
        // serialized (spinning single-core) model would need.
        assert!(t.elapsed() < std::time::Duration::from_millis(7));
    }
}
