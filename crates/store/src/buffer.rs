//! The buffer pool: an LRU page cache with I/O accounting.
//!
//! Every table read goes through [`BufferPool::fetch`]. A hit returns the
//! cached frame; a miss copies the page from the [`Disk`] (the simulated
//! transfer) and evicts the least-recently-used frame if at capacity.
//! Benchmarks read [`BufferPool::snapshot`] to report logical I/O next to
//! wall time, which is how we compare decompositions the way the paper
//! compares them on Oracle.

use crate::page::{Disk, Page, PageId};
use parking_lot::Mutex;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Distinguishes pools for the thread-local counters below; never reused.
static NEXT_POOL_ID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Per-thread (hits, misses) per pool id. Keyed by id rather than
    /// address so a pool dropped and reallocated at the same address
    /// cannot inherit a previous pool's counts.
    static LOCAL_IO: RefCell<HashMap<u64, (u64, u64)>> = RefCell::new(HashMap::new());
}

/// A point-in-time copy of the I/O counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoSnapshot {
    /// Pages served from the pool.
    pub hits: u64,
    /// Pages copied in from disk.
    pub misses: u64,
}

impl IoSnapshot {
    /// Total logical page requests.
    pub fn logical(&self) -> u64 {
        self.hits + self.misses
    }

    /// Counter-wise difference (`self - earlier`).
    pub fn since(&self, earlier: IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
        }
    }
}

struct Frames {
    map: HashMap<PageId, (Page, u64)>,
    tick: u64,
}

/// An LRU buffer pool over a [`Disk`].
pub struct BufferPool {
    id: u64,
    capacity: usize,
    frames: Mutex<Frames>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Simulated per-miss transfer latency in nanoseconds (0 = off).
    miss_penalty_ns: AtomicU64,
}

impl BufferPool {
    /// Creates a pool holding at most `capacity` pages.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        Self {
            id: NEXT_POOL_ID.fetch_add(1, Ordering::Relaxed),
            capacity,
            frames: Mutex::new(Frames {
                map: HashMap::with_capacity(capacity),
                tick: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            miss_penalty_ns: AtomicU64::new(0),
        }
    }

    /// Sets a simulated I/O latency charged on every pool miss (busy
    /// wait). The in-memory page copy alone under-represents a real
    /// buffer-manager miss; experiments that model a disk-resident
    /// database (as in the paper's Oracle setup) set this to a few
    /// microseconds so that working sets larger than the pool actually
    /// hurt.
    pub fn set_miss_penalty(&self, penalty: std::time::Duration) {
        self.miss_penalty_ns
            .store(penalty.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Fetches a page, reading through to `disk` on a miss.
    pub fn fetch(&self, disk: &Disk, id: PageId) -> Page {
        let mut f = self.frames.lock();
        f.tick += 1;
        let tick = f.tick;
        if let Some((page, stamp)) = f.map.get_mut(&id) {
            *stamp = tick;
            let page = page.clone();
            drop(f);
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.record_local(true);
            return page;
        }
        // Miss: simulate the transfer with an actual page copy.
        let from_disk = disk.read(id);
        let copied: Page = std::sync::Arc::new(*from_disk);
        if f.map.len() >= self.capacity {
            if let Some((&victim, _)) = f.map.iter().min_by_key(|(_, (_, stamp))| *stamp) {
                f.map.remove(&victim);
            }
        }
        f.map.insert(id, (copied.clone(), tick));
        drop(f);
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.record_local(false);
        let penalty = self.miss_penalty_ns.load(Ordering::Relaxed);
        if penalty > 0 {
            let start = std::time::Instant::now();
            while (start.elapsed().as_nanos() as u64) < penalty {
                std::hint::spin_loop();
            }
        }
        copied
    }

    /// Current counters.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    fn record_local(&self, hit: bool) {
        LOCAL_IO.with(|m| {
            let mut m = m.borrow_mut();
            let entry = m.entry(self.id).or_default();
            if hit {
                entry.0 += 1;
            } else {
                entry.1 += 1;
            }
        });
    }

    /// The calling thread's cumulative hit/miss counts against this pool.
    ///
    /// Unlike [`BufferPool::snapshot`], which aggregates every thread,
    /// deltas of this snapshot attribute I/O to the work the calling
    /// thread actually performed — meaningful even while other queries
    /// run concurrently on the same pool.
    pub fn local_snapshot(&self) -> IoSnapshot {
        LOCAL_IO.with(|m| {
            let (hits, misses) = m.borrow().get(&self.id).copied().unwrap_or((0, 0));
            IoSnapshot { hits, misses }
        })
    }

    /// Empties the pool (e.g. between benchmark runs for a cold start).
    pub fn clear(&self) {
        let mut f = self.frames.lock();
        f.map.clear();
    }

    /// The configured capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PAGE_U32S;

    fn disk_with(n: usize) -> Disk {
        let d = Disk::new();
        for i in 0..n {
            let mut p = [0u32; PAGE_U32S];
            p[0] = i as u32;
            d.append(p);
        }
        d
    }

    #[test]
    fn hit_after_miss() {
        let d = disk_with(1);
        let pool = BufferPool::new(4);
        pool.fetch(&d, PageId(0));
        pool.fetch(&d, PageId(0));
        let s = pool.snapshot();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 1);
        assert_eq!(s.logical(), 2);
    }

    #[test]
    fn lru_evicts_oldest() {
        let d = disk_with(3);
        let pool = BufferPool::new(2);
        pool.fetch(&d, PageId(0)); // miss
        pool.fetch(&d, PageId(1)); // miss
        pool.fetch(&d, PageId(0)); // hit, refreshes 0
        pool.fetch(&d, PageId(2)); // miss, evicts 1
        pool.fetch(&d, PageId(0)); // hit (still resident)
        pool.fetch(&d, PageId(1)); // miss (was evicted)
        let s = pool.snapshot();
        assert_eq!(s.misses, 4);
        assert_eq!(s.hits, 2);
    }

    #[test]
    fn clear_forces_misses() {
        let d = disk_with(1);
        let pool = BufferPool::new(2);
        pool.fetch(&d, PageId(0));
        pool.clear();
        pool.fetch(&d, PageId(0));
        assert_eq!(pool.snapshot().misses, 2);
    }

    #[test]
    fn snapshot_since() {
        let d = disk_with(2);
        let pool = BufferPool::new(2);
        pool.fetch(&d, PageId(0));
        let before = pool.snapshot();
        pool.fetch(&d, PageId(0));
        pool.fetch(&d, PageId(1));
        let delta = pool.snapshot().since(before);
        assert_eq!(delta, IoSnapshot { hits: 1, misses: 1 });
    }

    #[test]
    fn local_snapshot_is_per_thread() {
        let d = disk_with(4);
        let pool = BufferPool::new(4);
        let before = pool.local_snapshot();
        pool.fetch(&d, PageId(0)); // miss
        pool.fetch(&d, PageId(0)); // hit
        std::thread::scope(|s| {
            s.spawn(|| {
                // Another thread's work: 2 misses, 1 hit — global only.
                pool.fetch(&d, PageId(1));
                pool.fetch(&d, PageId(2));
                pool.fetch(&d, PageId(1));
                let theirs = pool.local_snapshot();
                assert_eq!(theirs, IoSnapshot { hits: 1, misses: 2 });
            });
        });
        let mine = pool.local_snapshot().since(before);
        assert_eq!(mine, IoSnapshot { hits: 1, misses: 1 });
        assert_eq!(pool.snapshot(), IoSnapshot { hits: 2, misses: 3 });
    }

    #[test]
    fn local_snapshot_distinguishes_pools() {
        let d = disk_with(2);
        let a = BufferPool::new(2);
        let b = BufferPool::new(2);
        a.fetch(&d, PageId(0));
        a.fetch(&d, PageId(0));
        b.fetch(&d, PageId(1));
        assert_eq!(a.local_snapshot(), IoSnapshot { hits: 1, misses: 1 });
        assert_eq!(b.local_snapshot(), IoSnapshot { hits: 0, misses: 1 });
    }

    #[test]
    fn fetched_content_matches_disk() {
        let d = disk_with(2);
        let pool = BufferPool::new(2);
        assert_eq!(pool.fetch(&d, PageId(1))[0], 1);
        assert_eq!(pool.fetch(&d, PageId(0))[0], 0);
    }
}

#[cfg(test)]
mod penalty_tests {
    use super::*;
    use crate::page::PAGE_U32S;

    #[test]
    fn miss_penalty_slows_misses_only() {
        let d = Disk::new();
        d.append([0u32; PAGE_U32S]);
        let pool = BufferPool::new(2);
        pool.set_miss_penalty(std::time::Duration::from_micros(300));
        let t = std::time::Instant::now();
        pool.fetch(&d, PageId(0)); // miss: pays penalty
        let miss_time = t.elapsed();
        let t = std::time::Instant::now();
        pool.fetch(&d, PageId(0)); // hit: free
        let hit_time = t.elapsed();
        assert!(miss_time >= std::time::Duration::from_micros(300));
        assert!(hit_time < miss_time);
    }
}
