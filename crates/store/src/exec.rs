//! Volcano-style executors over tables.
//!
//! XKeyword evaluates candidate TSS networks in two regimes (§6/§7):
//!
//! * **top-k** — nested-loop joins where "the connection relations only
//!   store IDs and have every single-attribute index, which makes the
//!   joins index lookups": [`IndexNestedLoopJoin`].
//! * **all results** — full evaluation, where "the full table scan and
//!   the hash join is the fastest way to perform a join when the size of
//!   the relations is small relative to main memory": [`HashJoin`] /
//!   [`hash_join`].
//!
//! Iterators are boxed rows ([`RowIter`]) so plans compose dynamically.

use crate::db::Db;
use crate::table::{Id, Row, Table};
use std::collections::HashMap;
use std::sync::Arc;

/// A dynamically-typed row stream.
pub type RowIter<'a> = Box<dyn Iterator<Item = Row> + 'a>;

/// Nested-loop join probing an inner table per outer row.
///
/// Output rows are the outer row concatenated with the inner row.
pub struct IndexNestedLoopJoin<'a> {
    db: &'a Db,
    outer: RowIter<'a>,
    inner: Arc<Table>,
    /// Outer columns forming the probe key.
    outer_cols: Vec<usize>,
    /// Inner columns the key must equal.
    inner_cols: Vec<usize>,
    pending: std::vec::IntoIter<Row>,
    current_outer: Option<Row>,
}

impl<'a> IndexNestedLoopJoin<'a> {
    /// Creates the join.
    pub fn new(
        db: &'a Db,
        outer: RowIter<'a>,
        inner: Arc<Table>,
        outer_cols: Vec<usize>,
        inner_cols: Vec<usize>,
    ) -> Self {
        assert_eq!(outer_cols.len(), inner_cols.len());
        Self {
            db,
            outer,
            inner,
            outer_cols,
            inner_cols,
            pending: Vec::new().into_iter(),
            current_outer: None,
        }
    }
}

impl Iterator for IndexNestedLoopJoin<'_> {
    type Item = Row;

    fn next(&mut self) -> Option<Row> {
        loop {
            if let Some(inner_row) = self.pending.next() {
                let outer = self.current_outer.as_ref().unwrap();
                let mut row = Vec::with_capacity(outer.len() + inner_row.len());
                row.extend_from_slice(outer);
                row.extend_from_slice(&inner_row);
                return Some(row.into());
            }
            let outer = self.outer.next()?;
            let key: Vec<Id> = self.outer_cols.iter().map(|&c| outer[c]).collect();
            let (rows, _) = self.db.probe(&self.inner, &self.inner_cols, &key);
            self.current_outer = Some(outer);
            self.pending = rows.into_iter();
        }
    }
}

/// In-memory hash join of two row sets on equal-key columns.
///
/// Output rows are the left row concatenated with the right row.
pub fn hash_join(
    left: &[Row],
    left_cols: &[usize],
    right: &[Row],
    right_cols: &[usize],
) -> Vec<Row> {
    assert_eq!(left_cols.len(), right_cols.len());
    let _span = xkw_obs::span!(
        "store.hash_join",
        left_rows = left.len(),
        right_rows = right.len()
    );
    // Build on the smaller side.
    if right.len() < left.len() {
        return hash_join(right, right_cols, left, left_cols)
            .into_iter()
            .map(|r| {
                // Swap the halves back into left ++ right order.
                let right_width = right[0].len();
                let (a, b) = r.split_at(right_width);
                let mut row = Vec::with_capacity(r.len());
                row.extend_from_slice(b);
                row.extend_from_slice(a);
                row.into()
            })
            .collect();
    }
    let mut table: HashMap<Vec<Id>, Vec<&Row>> = HashMap::with_capacity(left.len());
    for r in left {
        let key: Vec<Id> = left_cols.iter().map(|&c| r[c]).collect();
        table.entry(key).or_default().push(r);
    }
    let mut out = Vec::new();
    for r in right {
        let key: Vec<Id> = right_cols.iter().map(|&c| r[c]).collect();
        if let Some(matches) = table.get(&key) {
            for l in matches {
                let mut row = Vec::with_capacity(l.len() + r.len());
                row.extend_from_slice(l);
                row.extend_from_slice(r);
                out.push(row.into());
            }
        }
    }
    out
}

/// Streaming hash join: builds on a materialized left side, probes with a
/// right stream.
pub struct HashJoin<'a> {
    built: HashMap<Vec<Id>, Vec<Row>>,
    right: RowIter<'a>,
    right_cols: Vec<usize>,
    pending: std::vec::IntoIter<Row>,
}

impl<'a> HashJoin<'a> {
    /// Builds the hash table from `left` keyed on `left_cols`.
    pub fn new(
        left: Vec<Row>,
        left_cols: &[usize],
        right: RowIter<'a>,
        right_cols: Vec<usize>,
    ) -> Self {
        assert_eq!(left_cols.len(), right_cols.len());
        let mut built: HashMap<Vec<Id>, Vec<Row>> = HashMap::with_capacity(left.len());
        for r in left {
            let key: Vec<Id> = left_cols.iter().map(|&c| r[c]).collect();
            built.entry(key).or_default().push(r);
        }
        Self {
            built,
            right,
            right_cols,
            pending: Vec::new().into_iter(),
        }
    }
}

impl Iterator for HashJoin<'_> {
    type Item = Row;

    fn next(&mut self) -> Option<Row> {
        loop {
            if let Some(r) = self.pending.next() {
                return Some(r);
            }
            let right = self.right.next()?;
            let key: Vec<Id> = self.right_cols.iter().map(|&c| right[c]).collect();
            if let Some(matches) = self.built.get(&key) {
                let joined: Vec<Row> = matches
                    .iter()
                    .map(|l| {
                        let mut row = Vec::with_capacity(l.len() + right.len());
                        row.extend_from_slice(l);
                        row.extend_from_slice(&right);
                        row.into()
                    })
                    .collect();
                self.pending = joined.into_iter();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::PhysicalOptions;

    fn rows(pairs: &[(Id, Id)]) -> Vec<Row> {
        pairs.iter().map(|&(a, b)| vec![a, b].into()).collect()
    }

    #[test]
    fn hash_join_basic() {
        let left = rows(&[(1, 10), (2, 20), (2, 21)]);
        let right = rows(&[(2, 200), (3, 300)]);
        let mut out = hash_join(&left, &[0], &right, &[0]);
        out.sort();
        assert_eq!(
            out,
            vec![
                Row::from(vec![2, 20, 2, 200]),
                Row::from(vec![2, 21, 2, 200])
            ]
        );
    }

    #[test]
    fn hash_join_swaps_to_smaller_build_side() {
        let left = rows(&[(1, 10), (2, 20), (3, 30), (4, 40)]);
        let right = rows(&[(2, 200)]);
        let out = hash_join(&left, &[0], &right, &[0]);
        assert_eq!(out, vec![Row::from(vec![2, 20, 2, 200])]);
    }

    #[test]
    fn hash_join_empty_sides() {
        assert!(hash_join(&[], &[0], &rows(&[(1, 1)]), &[0]).is_empty());
        assert!(hash_join(&rows(&[(1, 1)]), &[0], &[], &[0]).is_empty());
    }

    #[test]
    fn index_nested_loop_join() {
        let db = Db::new(16);
        let inner = db.create_table(
            "inner",
            2,
            rows(&[(10, 100), (10, 101), (20, 200)]),
            PhysicalOptions::indexed_all(2),
        );
        let outer_rows = rows(&[(1, 10), (2, 20), (3, 30)]);
        let join = IndexNestedLoopJoin::new(
            &db,
            Box::new(outer_rows.into_iter()),
            inner,
            vec![1],
            vec![0],
        );
        let mut got: Vec<Row> = join.collect();
        got.sort();
        assert_eq!(
            got,
            vec![
                Row::from(vec![1, 10, 10, 100]),
                Row::from(vec![1, 10, 10, 101]),
                Row::from(vec![2, 20, 20, 200]),
            ]
        );
    }

    #[test]
    fn streaming_hash_join_matches_batch() {
        let left = rows(&[(1, 10), (2, 20), (2, 21)]);
        let right = rows(&[(2, 200), (1, 100), (9, 900)]);
        let mut batch = hash_join(&left, &[0], &right, &[0]);
        let streaming = HashJoin::new(left, &[0], Box::new(right.into_iter()), vec![0]);
        let mut got: Vec<Row> = streaming.collect();
        batch.sort();
        got.sort();
        assert_eq!(got, batch);
    }
}
