//! The database façade bundling disk, buffer pool, catalog and BLOBs.

use crate::blob::BlobStore;
use crate::buffer::{BufferPool, IoSnapshot};
use crate::error::StoreError;
use crate::page::Disk;
use crate::table::{AccessPath, Id, PhysicalOptions, Row, Table};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// An embedded database instance: one simulated disk, one buffer pool, a
/// catalog of immutable tables and a BLOB store. Cheap to share across
/// threads behind an `Arc`.
pub struct Db {
    disk: Disk,
    pool: BufferPool,
    tables: RwLock<HashMap<String, Arc<Table>>>,
    blobs: BlobStore,
}

impl Db {
    /// Creates a database whose buffer pool holds `pool_pages` pages,
    /// with the pool's default shard count.
    pub fn new(pool_pages: usize) -> Self {
        Self::with_pool(BufferPool::new(pool_pages))
    }

    /// Creates a database with an explicit buffer-pool shard count
    /// (`0` = pick from capacity; see [`BufferPool::with_shards`]).
    pub fn with_pool_shards(pool_pages: usize, shards: usize) -> Self {
        Self::with_pool(if shards == 0 {
            BufferPool::new(pool_pages)
        } else {
            BufferPool::with_shards(pool_pages, shards)
        })
    }

    fn with_pool(pool: BufferPool) -> Self {
        Self {
            disk: Disk::new(),
            pool,
            tables: RwLock::new(HashMap::new()),
            blobs: BlobStore::new(),
        }
    }

    /// Bulk-loads a table into the catalog.
    ///
    /// # Panics
    /// Panics if the name is already taken.
    pub fn create_table(
        &self,
        name: &str,
        arity: usize,
        rows: Vec<Row>,
        options: PhysicalOptions,
    ) -> Arc<Table> {
        self.try_create_table(name, arity, rows, options)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Bulk-loads a table, reporting a duplicate name as an error instead
    /// of panicking.
    ///
    /// # Errors
    /// [`StoreError::DuplicateTable`] if the name is already taken; the
    /// catalog is left unchanged.
    pub fn try_create_table(
        &self,
        name: &str,
        arity: usize,
        rows: Vec<Row>,
        options: PhysicalOptions,
    ) -> Result<Arc<Table>, StoreError> {
        let mut tables = self.tables.write();
        if tables.contains_key(name) {
            return Err(StoreError::DuplicateTable(name.to_owned()));
        }
        let table = Arc::new(Table::build(&self.disk, name, arity, rows, options));
        if let Some(first) = table.first_page() {
            // Table-targeted fault rules resolve to the fresh page run.
            self.disk
                .faults()
                .resolve_table(name, first.0, table.page_count() as u32);
        }
        tables.insert(name.to_owned(), table.clone());
        Ok(table)
    }

    /// Installs a fault-injection plan on this database's disk, arming
    /// checksum verification. Rules targeting tables that already exist
    /// resolve immediately; rules naming future tables resolve as those
    /// tables are created (so load-time torn writes can fire).
    pub fn install_faults(&self, spec: crate::fault::FaultSpec) {
        self.disk.faults().install(spec);
        for table in self.tables.read().values() {
            if let Some(first) = table.first_page() {
                self.disk
                    .faults()
                    .resolve_table(table.name(), first.0, table.page_count() as u32);
            }
        }
    }

    /// The disk's fault layer (stats, quarantine, clearing).
    pub fn faults(&self) -> &crate::fault::FaultLayer {
        self.disk.faults()
    }

    /// Unregisters a table from the catalog, returning it if present.
    ///
    /// Tables are immutable and the simulated disk is append-only, so
    /// this frees the *name* (for epoch-rotated replacements on the
    /// incremental write path) but not the pages: readers holding the
    /// `Arc` keep scanning the dropped table, log-structured style, and
    /// the orphaned pages are only reclaimed when the whole `Db` goes.
    pub fn drop_table(&self, name: &str) -> Option<Arc<Table>> {
        self.tables.write().remove(name)
    }

    /// Looks up a table by name.
    pub fn table(&self, name: &str) -> Option<Arc<Table>> {
        self.tables.read().get(name).cloned()
    }

    /// Looks up a table by name, reporting absence as a typed error.
    ///
    /// # Errors
    /// [`StoreError::MissingTable`] if no table has that name.
    pub fn require_table(&self, name: &str) -> Result<Arc<Table>, StoreError> {
        self.table(name)
            .ok_or_else(|| StoreError::MissingTable(name.to_owned()))
    }

    /// All table names (sorted, for deterministic reporting).
    pub fn table_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.tables.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Sequentially scans a table into a vector.
    pub fn scan_all(&self, table: &Table) -> Vec<Row> {
        table.scan(&self.disk, &self.pool).collect()
    }

    /// Sequentially scans a table, reporting unreadable pages as typed
    /// errors instead of panicking.
    ///
    /// # Errors
    /// [`StoreError::CorruptPage`] for unreadable pages.
    pub fn try_scan_all(&self, table: &Table) -> Result<Vec<Row>, StoreError> {
        table.try_scan_all(&self.disk, &self.pool)
    }

    /// Probes a table: rows whose `cols` equal `key`, plus the access path
    /// used.
    pub fn probe(&self, table: &Table, cols: &[usize], key: &[Id]) -> (Vec<Row>, AccessPath) {
        table.probe(&self.disk, &self.pool, cols, key)
    }

    /// Probes a table, reporting unreadable pages as typed errors
    /// instead of panicking.
    ///
    /// # Errors
    /// [`StoreError::CorruptPage`] for unreadable pages.
    pub fn try_probe(
        &self,
        table: &Table,
        cols: &[usize],
        key: &[Id],
    ) -> Result<(Vec<Row>, AccessPath), StoreError> {
        table.try_probe(&self.disk, &self.pool, cols, key)
    }

    /// The underlying disk (for iterator-based executors).
    pub fn disk(&self) -> &Disk {
        &self.disk
    }

    /// The buffer pool (for iterator-based executors and I/O reporting).
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// The BLOB store.
    pub fn blobs(&self) -> &BlobStore {
        &self.blobs
    }

    /// Current I/O counters (all threads).
    pub fn io(&self) -> IoSnapshot {
        self.pool.snapshot()
    }

    /// The calling thread's cumulative I/O against this database's pool
    /// (see [`BufferPool::local_snapshot`]).
    pub fn local_io(&self) -> IoSnapshot {
        self.pool.local_snapshot()
    }

    /// Total pages on disk across all tables.
    pub fn disk_pages(&self) -> usize {
        self.disk.page_count()
    }

    /// Publishes the store's current counters into `registry`: pool-wide
    /// and per-shard gauges (see [`BufferPool::export_metrics`]) plus one
    /// `xkw_table_logical_io{table="…"}` gauge per table. Pull-based so
    /// the fetch hot path never touches the registry.
    pub fn export_metrics(&self, registry: &xkw_obs::Registry) {
        self.pool.export_metrics(registry);
        self.disk.faults().export_metrics(registry);
        for (name, table) in self.tables.read().iter() {
            registry
                .gauge(&format!("xkw_table_logical_io{{table=\"{name}\"}}"))
                .set(table.logical_io());
        }
    }
}

impl std::fmt::Debug for Db {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Db")
            .field("tables", &self.table_names())
            .field("disk_pages", &self.disk_pages())
            .field("io", &self.io())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_round_trip() {
        let db = Db::new(16);
        let rows: Vec<Row> = vec![vec![1, 2].into(), vec![3, 4].into()];
        db.create_table("po", 2, rows.clone(), PhysicalOptions::heap());
        let t = db.table("po").unwrap();
        assert_eq!(db.scan_all(&t), rows);
        assert!(db.table("missing").is_none());
        assert_eq!(db.table_names(), vec!["po".to_owned()]);
    }

    #[test]
    #[should_panic(expected = "already exists")]
    fn duplicate_table_panics() {
        let db = Db::new(16);
        db.create_table("t", 1, vec![], PhysicalOptions::heap());
        db.create_table("t", 1, vec![], PhysicalOptions::heap());
    }

    #[test]
    fn try_create_reports_duplicates() {
        let db = Db::new(16);
        db.try_create_table("t", 1, vec![], PhysicalOptions::heap())
            .unwrap();
        let err = db
            .try_create_table("t", 1, vec![], PhysicalOptions::heap())
            .unwrap_err();
        assert_eq!(err, StoreError::DuplicateTable("t".to_owned()));
        // The original table is untouched.
        assert!(db.table("t").is_some());
    }

    #[test]
    fn require_table_reports_missing() {
        let db = Db::new(16);
        assert_eq!(
            db.require_table("ghost").unwrap_err(),
            StoreError::MissingTable("ghost".to_owned())
        );
        db.create_table("real", 1, vec![], PhysicalOptions::heap());
        assert!(db.require_table("real").is_ok());
    }

    #[test]
    fn io_counters_move() {
        let db = Db::new(16);
        let rows: Vec<Row> = (0..100u32).map(|i| vec![i, i].into()).collect();
        let t = db.create_table("t", 2, rows, PhysicalOptions::heap());
        let before = db.io();
        db.scan_all(&t);
        assert!(db.io().since(before).logical() > 0);
    }

    #[test]
    fn table_logical_io_tracks_fetches() {
        let db = Db::new(16);
        let rows: Vec<Row> = (0..100u32).map(|i| vec![i, i].into()).collect();
        let t = db.create_table("t", 2, rows, PhysicalOptions::heap());
        assert_eq!(t.logical_io(), 0);
        let before = db.io();
        db.scan_all(&t);
        assert_eq!(t.logical_io(), db.io().since(before).logical());

        let registry = xkw_obs::Registry::new();
        db.export_metrics(&registry);
        assert_eq!(
            registry.gauge("xkw_table_logical_io{table=\"t\"}").get(),
            t.logical_io()
        );
    }

    #[test]
    fn shared_across_threads() {
        let db = Arc::new(Db::new(16));
        let rows: Vec<Row> = (0..1000u32).map(|i| vec![i % 10, i].into()).collect();
        db.create_table("t", 2, rows, PhysicalOptions::indexed_all(2));
        let mut handles = Vec::new();
        for k in 0..4u32 {
            let db = db.clone();
            handles.push(std::thread::spawn(move || {
                let t = db.table("t").unwrap();
                let (rows, _) = db.probe(&t, &[0], &[k]);
                rows.len()
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 100);
        }
    }
}
