//! The database façade bundling disk, buffer pool, catalog and BLOBs.

use crate::blob::BlobStore;
use crate::buffer::{BufferPool, IoSnapshot};
use crate::page::Disk;
use crate::table::{AccessPath, Id, PhysicalOptions, Row, Table};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// An embedded database instance: one simulated disk, one buffer pool, a
/// catalog of immutable tables and a BLOB store. Cheap to share across
/// threads behind an `Arc`.
pub struct Db {
    disk: Disk,
    pool: BufferPool,
    tables: RwLock<HashMap<String, Arc<Table>>>,
    blobs: BlobStore,
}

impl Db {
    /// Creates a database whose buffer pool holds `pool_pages` pages.
    pub fn new(pool_pages: usize) -> Self {
        Self {
            disk: Disk::new(),
            pool: BufferPool::new(pool_pages),
            tables: RwLock::new(HashMap::new()),
            blobs: BlobStore::new(),
        }
    }

    /// Bulk-loads a table into the catalog.
    ///
    /// # Panics
    /// Panics if the name is already taken.
    pub fn create_table(
        &self,
        name: &str,
        arity: usize,
        rows: Vec<Row>,
        options: PhysicalOptions,
    ) -> Arc<Table> {
        let table = Arc::new(Table::build(&self.disk, name, arity, rows, options));
        let prev = self.tables.write().insert(name.to_owned(), table.clone());
        assert!(prev.is_none(), "table {name:?} already exists");
        table
    }

    /// Looks up a table by name.
    pub fn table(&self, name: &str) -> Option<Arc<Table>> {
        self.tables.read().get(name).cloned()
    }

    /// All table names (sorted, for deterministic reporting).
    pub fn table_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.tables.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Sequentially scans a table into a vector.
    pub fn scan_all(&self, table: &Table) -> Vec<Row> {
        table.scan(&self.disk, &self.pool).collect()
    }

    /// Probes a table: rows whose `cols` equal `key`, plus the access path
    /// used.
    pub fn probe(&self, table: &Table, cols: &[usize], key: &[Id]) -> (Vec<Row>, AccessPath) {
        table.probe(&self.disk, &self.pool, cols, key)
    }

    /// The underlying disk (for iterator-based executors).
    pub fn disk(&self) -> &Disk {
        &self.disk
    }

    /// The buffer pool (for iterator-based executors and I/O reporting).
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// The BLOB store.
    pub fn blobs(&self) -> &BlobStore {
        &self.blobs
    }

    /// Current I/O counters.
    pub fn io(&self) -> IoSnapshot {
        self.pool.snapshot()
    }

    /// Total pages on disk across all tables.
    pub fn disk_pages(&self) -> usize {
        self.disk.page_count()
    }
}

impl std::fmt::Debug for Db {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Db")
            .field("tables", &self.table_names())
            .field("disk_pages", &self.disk_pages())
            .field("io", &self.io())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_round_trip() {
        let db = Db::new(16);
        let rows: Vec<Row> = vec![vec![1, 2].into(), vec![3, 4].into()];
        db.create_table("po", 2, rows.clone(), PhysicalOptions::heap());
        let t = db.table("po").unwrap();
        assert_eq!(db.scan_all(&t), rows);
        assert!(db.table("missing").is_none());
        assert_eq!(db.table_names(), vec!["po".to_owned()]);
    }

    #[test]
    #[should_panic(expected = "already exists")]
    fn duplicate_table_panics() {
        let db = Db::new(16);
        db.create_table("t", 1, vec![], PhysicalOptions::heap());
        db.create_table("t", 1, vec![], PhysicalOptions::heap());
    }

    #[test]
    fn io_counters_move() {
        let db = Db::new(16);
        let rows: Vec<Row> = (0..100u32).map(|i| vec![i, i].into()).collect();
        let t = db.create_table("t", 2, rows, PhysicalOptions::heap());
        let before = db.io();
        db.scan_all(&t);
        assert!(db.io().since(before).logical() > 0);
    }

    #[test]
    fn shared_across_threads() {
        let db = Arc::new(Db::new(16));
        let rows: Vec<Row> = (0..1000u32).map(|i| vec![i % 10, i].into()).collect();
        db.create_table("t", 2, rows, PhysicalOptions::indexed_all(2));
        let mut handles = Vec::new();
        for k in 0..4u32 {
            let db = db.clone();
            handles.push(std::thread::spawn(move || {
                let t = db.table("t").unwrap();
                let (rows, _) = db.probe(&t, &[0], &[k]);
                rows.len()
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 100);
        }
    }
}
