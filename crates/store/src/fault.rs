//! Deterministic, seedable fault injection for the simulated disk.
//!
//! The paper's engine ran on Oracle 9i — storage that can stall, corrupt
//! and time out. Our simulated disk is infallible by construction, so
//! this module adds a scriptable fault layer: a [`FaultSpec`] names a
//! seed plus a list of [`FaultRule`]s (fault kind × target pages ×
//! probability), and the disk consults the installed plan on every
//! append and physical read.
//!
//! # Determinism
//!
//! Every injection decision is a *pure function* of
//! `(seed, rule, page, attempt)` — a splitmix64-style hash, never a
//! shared sequential RNG — so outcomes are independent of thread
//! interleaving: the same plan produces byte-identical behaviour at any
//! worker-thread count. The shimmed `rand` has no OS entropy, so seeds
//! are always explicit (see `LoadOptions` in `xkw-core`).
//!
//! # Fault taxonomy
//!
//! * [`FaultKind::TransientRead`] — the read attempt fails but the page
//!   is intact; a retry (with backoff) succeeds. By construction a
//!   transient rule **never** fires on the final retry attempt
//!   ([`MAX_READ_ATTEMPTS`]` - 1`), so transient-only plans cannot
//!   degrade results — they only cost latency.
//! * [`FaultKind::SlowPage`] — the read succeeds but pays extra
//!   simulated latency (sleep-parked, like the miss penalty).
//! * [`FaultKind::BitFlip`] — the read returns a copy with one bit
//!   flipped; the page checksum catches it. At probability < 1 a retry
//!   may rescue the read; at 1.0 retries exhaust and the page is
//!   quarantined.
//! * [`FaultKind::TornWrite`] — the append stores corrupted data under
//!   the pristine checksum; every subsequent read of that page fails
//!   verification (permanent corruption).
//!
//! When the layer is disarmed (the default), the only cost on the read
//! path is one relaxed atomic load — the same discipline as `xkw-obs`.

use parking_lot::RwLock;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Maximum physical read attempts per buffer-pool miss (1 initial try +
/// retries). Transient faults never fire on the final attempt.
pub const MAX_READ_ATTEMPTS: u32 = 4;

/// Base backoff before the first retry, in simulated nanoseconds. At or
/// above the pool's park threshold, so retrying threads sleep and
/// overlap instead of spinning.
pub const RETRY_BACKOFF_BASE_NS: u64 = 100_000;

/// The kind of fault a rule injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Read attempt fails; the page is intact and a retry succeeds.
    TransientRead,
    /// Read succeeds after extra sleep-parked latency.
    SlowPage,
    /// Read returns a copy with one bit flipped (checksum catches it).
    BitFlip,
    /// Append persists corrupted data under the pristine checksum.
    TornWrite,
    /// WAL: record `at` is written only partially before the process
    /// "crashes" (short write — a truncated tail on replay).
    WalShort,
    /// WAL: record `at` is written full-length but with corrupted
    /// payload bytes under its original checksum, then the process
    /// "crashes" (torn tail — a checksum mismatch on replay).
    WalTorn,
    /// WAL: the append of record `at` fails before writing anything
    /// (clean crash exactly at a record boundary).
    Crash,
}

impl FaultKind {
    fn salt(self) -> u64 {
        match self {
            FaultKind::TransientRead => 0x7261_6e73,
            FaultKind::SlowPage => 0x736c_6f77,
            FaultKind::BitFlip => 0x666c_6970,
            FaultKind::TornWrite => 0x746f_726e,
            FaultKind::WalShort => 0x7773_6872,
            FaultKind::WalTorn => 0x7774_726e,
            FaultKind::Crash => 0x6372_7368,
        }
    }

    /// Whether this kind targets the write-ahead log rather than disk
    /// pages. WAL faults are driven by a record index (`at=N`), never by
    /// page probabilities.
    pub fn is_wal(self) -> bool {
        matches!(
            self,
            FaultKind::WalShort | FaultKind::WalTorn | FaultKind::Crash
        )
    }
}

/// Which pages a rule applies to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultTarget {
    /// Every page on the disk.
    All,
    /// A half-open page-id range `[start, end)`.
    Pages {
        /// First page id covered.
        start: u32,
        /// One past the last page id covered.
        end: u32,
    },
    /// All pages of the named table (resolved when the table is built;
    /// a rule naming a table that never materializes stays inert).
    Table(String),
}

/// One scripted fault: kind × target × per-(page, attempt) probability.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRule {
    /// What to inject.
    pub kind: FaultKind,
    /// Where to inject it.
    pub target: FaultTarget,
    /// Probability in `[0, 1]` that the rule fires for a given
    /// `(page, attempt)` pair (or `(page,)` for torn writes).
    pub probability: f64,
    /// Extra simulated latency for [`FaultKind::SlowPage`], ns.
    pub slow_ns: u64,
    /// WAL record index the rule fires at (WAL kinds only). Record
    /// indices count logical appends since the WAL was opened.
    pub at: Option<u64>,
}

/// A complete fault script: explicit seed plus rules.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultSpec {
    /// Seed every injection decision (and retry jitter) derives from.
    pub seed: u64,
    /// The scripted rules.
    pub rules: Vec<FaultRule>,
}

/// A malformed fault-spec string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpecParseError(pub String);

impl std::fmt::Display for FaultSpecParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad fault spec: {}", self.0)
    }
}

impl std::error::Error for FaultSpecParseError {}

impl FaultSpec {
    /// An empty spec with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultSpec {
            seed,
            rules: Vec::new(),
        }
    }

    /// Builder: appends a rule.
    #[must_use]
    pub fn rule(mut self, kind: FaultKind, target: FaultTarget, probability: f64) -> Self {
        self.rules.push(FaultRule {
            kind,
            target,
            probability,
            slow_ns: 4 * RETRY_BACKOFF_BASE_NS,
            at: None,
        });
        self
    }

    /// Builder: appends a slow-page rule with explicit latency.
    #[must_use]
    pub fn slow(mut self, target: FaultTarget, probability: f64, slow_ns: u64) -> Self {
        self.rules.push(FaultRule {
            kind: FaultKind::SlowPage,
            target,
            probability,
            slow_ns,
            at: None,
        });
        self
    }

    /// Builder: appends a WAL-targeted rule firing at record index `at`.
    ///
    /// # Panics
    /// Panics if `kind` is not a WAL kind (see [`FaultKind::is_wal`]).
    #[must_use]
    pub fn wal(mut self, kind: FaultKind, at: u64) -> Self {
        assert!(kind.is_wal(), "{kind:?} is not a WAL fault kind");
        self.rules.push(FaultRule {
            kind,
            target: FaultTarget::All,
            probability: 1.0,
            slow_ns: 0,
            at: Some(at),
        });
        self
    }

    /// Parses the CLI grammar: semicolon-separated clauses, each either
    /// `seed=N` or `<kind>[:key=val[,key=val…]]` with kinds `transient` /
    /// `slow` / `bitflip` / `torn` and keys `p=<0..1>` (default 1),
    /// `pages=<a>..<b>`, `table=<name>`, `ns=<latency>` (slow only), plus
    /// the WAL kinds `wal_short` / `wal_torn` / `crash`, which take
    /// exactly one key: `at=<record index>`.
    ///
    /// Example: `seed=42;transient:p=0.2;slow:table=cr.PL@c0,ns=500000`,
    /// or `crash:at=3` for the write path.
    ///
    /// # Errors
    /// [`FaultSpecParseError`] naming the offending clause.
    pub fn parse(s: &str) -> Result<Self, FaultSpecParseError> {
        let mut spec = FaultSpec::default();
        for clause in s.split(';').map(str::trim).filter(|c| !c.is_empty()) {
            if let Some(v) = clause.strip_prefix("seed=") {
                spec.seed = v
                    .trim()
                    .parse()
                    .map_err(|_| FaultSpecParseError(format!("bad seed in {clause:?}")))?;
                continue;
            }
            let (kind_str, args) = clause.split_once(':').unwrap_or((clause, ""));
            let kind = match kind_str.trim() {
                "transient" => FaultKind::TransientRead,
                "slow" => FaultKind::SlowPage,
                "bitflip" => FaultKind::BitFlip,
                "torn" => FaultKind::TornWrite,
                "wal_short" => FaultKind::WalShort,
                "wal_torn" => FaultKind::WalTorn,
                "crash" => FaultKind::Crash,
                other => {
                    return Err(FaultSpecParseError(format!("unknown fault kind {other:?}")));
                }
            };
            let mut rule = FaultRule {
                kind,
                target: FaultTarget::All,
                probability: 1.0,
                slow_ns: 4 * RETRY_BACKOFF_BASE_NS,
                at: None,
            };
            for kv in args.split(',').map(str::trim).filter(|a| !a.is_empty()) {
                let (k, v) = kv
                    .split_once('=')
                    .ok_or_else(|| FaultSpecParseError(format!("expected key=value in {kv:?}")))?;
                match k.trim() {
                    "at" if kind.is_wal() => {
                        rule.at = Some(v.trim().parse().map_err(|_| {
                            FaultSpecParseError(format!("bad record index in {kv:?}"))
                        })?);
                    }
                    "p" if !kind.is_wal() => {
                        rule.probability = v.trim().parse().map_err(|_| {
                            FaultSpecParseError(format!("bad probability in {kv:?}"))
                        })?;
                    }
                    "ns" if !kind.is_wal() => {
                        rule.slow_ns = v
                            .trim()
                            .parse()
                            .map_err(|_| FaultSpecParseError(format!("bad latency in {kv:?}")))?;
                    }
                    "table" if !kind.is_wal() => {
                        rule.target = FaultTarget::Table(v.trim().to_owned());
                    }
                    "pages" if !kind.is_wal() => {
                        let (a, b) = v.trim().split_once("..").ok_or_else(|| {
                            FaultSpecParseError(format!("expected a..b range in {kv:?}"))
                        })?;
                        let start = a.parse().map_err(|_| {
                            FaultSpecParseError(format!("bad range start in {kv:?}"))
                        })?;
                        let end = b
                            .parse()
                            .map_err(|_| FaultSpecParseError(format!("bad range end in {kv:?}")))?;
                        rule.target = FaultTarget::Pages { start, end };
                    }
                    other => {
                        return Err(FaultSpecParseError(format!("unknown key {other:?}")));
                    }
                }
            }
            if kind.is_wal() && rule.at.is_none() {
                return Err(FaultSpecParseError(format!(
                    "WAL fault needs at=<record index> in {clause:?}"
                )));
            }
            if !(0.0..=1.0).contains(&rule.probability) {
                return Err(FaultSpecParseError(format!(
                    "probability out of [0,1] in {clause:?}"
                )));
            }
            spec.rules.push(rule);
        }
        Ok(spec)
    }

    /// The first WAL-targeted rule, as a [`WalFault`] the WAL arms
    /// itself with; `None` when the spec only scripts page faults.
    pub fn wal_fault(&self) -> Option<WalFault> {
        self.rules
            .iter()
            .find(|r| r.kind.is_wal())
            .map(|r| WalFault {
                kind: r.kind,
                at: r.at.expect("parse/builder guarantee at for WAL kinds"),
            })
    }

    /// Whether every rule is transient or slow — i.e. the plan can cost
    /// latency but can never corrupt or lose data.
    pub fn is_transient_only(&self) -> bool {
        self.rules
            .iter()
            .all(|r| matches!(r.kind, FaultKind::TransientRead | FaultKind::SlowPage))
    }
}

/// A deterministic WAL fault: `kind` fires exactly when the WAL appends
/// its `at`-th record (0-based, counted since open). All three kinds
/// leave exactly the first `at` records recoverable — they differ only
/// in what garbage the tail holds for replay to truncate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalFault {
    /// [`FaultKind::WalShort`], [`FaultKind::WalTorn`] or
    /// [`FaultKind::Crash`].
    pub kind: FaultKind,
    /// The 0-based record index the fault fires at.
    pub at: u64,
}

/// Cumulative fault-layer counters (all relaxed atomics).
#[derive(Debug, Default)]
pub struct FaultStats {
    transient: AtomicU64,
    slow: AtomicU64,
    bit_flips: AtomicU64,
    torn_writes: AtomicU64,
    checksum_failures: AtomicU64,
    retries: AtomicU64,
    quarantined: AtomicU64,
}

/// A point-in-time copy of [`FaultStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultSnapshot {
    /// Transient read errors injected.
    pub transient: u64,
    /// Slow-page stalls injected.
    pub slow: u64,
    /// Bit flips injected on the read path.
    pub bit_flips: u64,
    /// Torn writes injected on the append path.
    pub torn_writes: u64,
    /// Checksum verification failures observed.
    pub checksum_failures: u64,
    /// Retry attempts spent by the buffer pool.
    pub retries: u64,
    /// Pages quarantined after exhausting retries.
    pub quarantined: u64,
}

impl FaultSnapshot {
    /// Counter-wise difference since an earlier snapshot.
    #[must_use]
    pub fn since(&self, earlier: FaultSnapshot) -> FaultSnapshot {
        FaultSnapshot {
            transient: self.transient - earlier.transient,
            slow: self.slow - earlier.slow,
            bit_flips: self.bit_flips - earlier.bit_flips,
            torn_writes: self.torn_writes - earlier.torn_writes,
            checksum_failures: self.checksum_failures - earlier.checksum_failures,
            retries: self.retries - earlier.retries,
            quarantined: self.quarantined - earlier.quarantined,
        }
    }
}

/// A rule with its target resolved to a concrete page range.
#[derive(Debug, Clone)]
struct ResolvedRule {
    kind: FaultKind,
    probability: f64,
    slow_ns: u64,
    /// Half-open page range; `None` = all pages.
    range: Option<(u32, u32)>,
    /// Stable salt so distinct rules decorrelate.
    salt: u64,
}

impl ResolvedRule {
    fn covers(&self, page: u32) -> bool {
        match self.range {
            None => true,
            Some((start, end)) => (start..end).contains(&page),
        }
    }
}

#[derive(Debug, Default)]
struct FaultState {
    seed: u64,
    resolved: Vec<ResolvedRule>,
    /// Table-targeted rules awaiting materialization: (rule, salt).
    pending: Vec<(FaultRule, u64)>,
    quarantined: HashSet<u32>,
}

/// What one physical read attempt encounters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadFault {
    /// The attempt failed but the page is intact; retry.
    Transient,
    /// The data fails checksum verification.
    Corrupt,
}

/// The fault layer a [`crate::page::Disk`] consults. Disarmed by default:
/// the read path then costs one relaxed atomic load.
#[derive(Debug, Default)]
pub struct FaultLayer {
    armed: AtomicBool,
    state: RwLock<FaultState>,
    stats: FaultStats,
}

impl FaultLayer {
    /// Whether any fault plan (or corruption check) is active.
    #[inline]
    pub fn armed(&self) -> bool {
        self.armed.load(Ordering::Relaxed)
    }

    /// Installs a fault plan, arming the layer. Table-targeted rules
    /// resolve as their tables materialize.
    pub fn install(&self, spec: FaultSpec) {
        let mut state = self.state.write();
        state.seed = spec.seed;
        state.resolved.clear();
        state.pending.clear();
        for (i, rule) in spec.rules.into_iter().enumerate() {
            if rule.kind.is_wal() {
                // WAL rules are consumed by the WAL itself (see
                // `FaultSpec::wal_fault`), never by the page layer.
                continue;
            }
            let salt = rule.kind.salt() ^ ((i as u64) << 40);
            match rule.target {
                FaultTarget::All => state.resolved.push(ResolvedRule {
                    kind: rule.kind,
                    probability: rule.probability,
                    slow_ns: rule.slow_ns,
                    range: None,
                    salt,
                }),
                FaultTarget::Pages { start, end } => state.resolved.push(ResolvedRule {
                    kind: rule.kind,
                    probability: rule.probability,
                    slow_ns: rule.slow_ns,
                    range: Some((start, end)),
                    salt,
                }),
                FaultTarget::Table(_) => state.pending.push((rule, salt)),
            }
        }
        drop(state);
        self.armed.store(true, Ordering::Relaxed);
    }

    /// Arms checksum verification without any scripted rules (used after
    /// out-of-band corruption such as [`crate::page::Disk::corrupt_page`]).
    pub fn arm_checks(&self) {
        self.armed.store(true, Ordering::Relaxed);
    }

    /// Disarms the layer and forgets the plan and quarantine set.
    pub fn clear(&self) {
        self.armed.store(false, Ordering::Relaxed);
        let mut state = self.state.write();
        state.resolved.clear();
        state.pending.clear();
        state.quarantined.clear();
    }

    /// Resolves pending table-targeted rules against a freshly built
    /// table's contiguous page range (builds are sequential, so a table's
    /// pages form one run).
    pub fn resolve_table(&self, name: &str, first_page: u32, page_count: u32) {
        if !self.armed() {
            return;
        }
        let mut state = self.state.write();
        let mut resolved = Vec::new();
        for (rule, salt) in &state.pending {
            if matches!(&rule.target, FaultTarget::Table(t) if t == name) {
                resolved.push(ResolvedRule {
                    kind: rule.kind,
                    probability: rule.probability,
                    slow_ns: rule.slow_ns,
                    range: Some((first_page, first_page + page_count)),
                    salt: *salt,
                });
            }
        }
        state.resolved.extend(resolved);
    }

    /// Consults torn-write rules for a page about to be appended. When a
    /// rule fires, corrupts `data` in place (the checksum of the pristine
    /// data has already been taken) and returns `true`.
    pub fn on_append(&self, page: u32, data: &mut [u32]) -> bool {
        if !self.armed() {
            return false;
        }
        let state = self.state.read();
        for rule in &state.resolved {
            if rule.kind == FaultKind::TornWrite
                && rule.covers(page)
                && fires(state.seed, rule.salt, page, 0, rule.probability)
            {
                // Tear the tail of the page: zero the last quarter, as if
                // the write stopped partway.
                let cut = data.len() - data.len() / 4;
                for w in &mut data[cut..] {
                    *w = !*w;
                }
                self.stats.torn_writes.fetch_add(1, Ordering::Relaxed);
                return true;
            }
        }
        false
    }

    /// Consults read-path rules for `(page, attempt)`. Returns either the
    /// extra latency to pay (slow pages) or a [`ReadFault`]. `corrupt_out`
    /// is set when a bit-flip rule fires so the disk can flip a bit in
    /// the returned copy.
    pub fn on_read(&self, page: u32, attempt: u32) -> ReadDecision {
        let state = self.state.read();
        let mut decision = ReadDecision::default();
        for rule in &state.resolved {
            if !rule.covers(page) {
                continue;
            }
            match rule.kind {
                FaultKind::TransientRead => {
                    // Never fire on the final attempt: transient faults
                    // are retry-recoverable by construction.
                    if attempt + 1 < MAX_READ_ATTEMPTS
                        && fires(state.seed, rule.salt, page, attempt, rule.probability)
                    {
                        self.stats.transient.fetch_add(1, Ordering::Relaxed);
                        decision.fault = Some(ReadFault::Transient);
                        return decision;
                    }
                }
                FaultKind::SlowPage => {
                    if fires(state.seed, rule.salt, page, attempt, rule.probability) {
                        self.stats.slow.fetch_add(1, Ordering::Relaxed);
                        decision.extra_ns += rule.slow_ns;
                    }
                }
                FaultKind::BitFlip => {
                    if fires(state.seed, rule.salt, page, attempt, rule.probability) {
                        self.stats.bit_flips.fetch_add(1, Ordering::Relaxed);
                        decision.flip_bit =
                            Some(splitmix(state.seed ^ rule.salt ^ u64::from(page)));
                    }
                }
                // Torn writes act on the append path; WAL kinds never
                // reach the resolved set (filtered at install).
                FaultKind::TornWrite
                | FaultKind::WalShort
                | FaultKind::WalTorn
                | FaultKind::Crash => {}
            }
        }
        decision
    }

    /// Deterministic retry-backoff jitter factor for `(page, attempt)`,
    /// in `[0.75, 1.25)`, derived from the installed seed.
    pub fn jitter(&self, page: u32, attempt: u32) -> f64 {
        let state = self.state.read();
        let h = splitmix(state.seed ^ 0x6a69_7474 ^ (u64::from(page) << 32) ^ u64::from(attempt));
        0.75 + (h >> 11) as f64 / (1u64 << 53) as f64 / 2.0
    }

    /// Marks a page as persistently failing; later fetches fail fast.
    /// Quarantines are rare and serious, so each one also lands in the
    /// process-global store-event log (the CLI `:top` view).
    pub fn quarantine(&self, page: u32) {
        if self.state.write().quarantined.insert(page) {
            self.stats.quarantined.fetch_add(1, Ordering::Relaxed);
            xkw_obs::recorder::events().push(
                "quarantine",
                format!("page {page} quarantined after exhausting read retries"),
            );
        }
    }

    /// Whether a page is quarantined.
    pub fn is_quarantined(&self, page: u32) -> bool {
        self.armed() && self.state.read().quarantined.contains(&page)
    }

    /// Records one retry attempt (called by the buffer pool).
    pub fn count_retry(&self) {
        self.stats.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one checksum verification failure (also logged to the
    /// store-event feed — a failure means a corrupt read was *caught*).
    pub fn count_checksum_failure(&self) {
        self.stats.checksum_failures.fetch_add(1, Ordering::Relaxed);
        xkw_obs::recorder::events().push(
            "checksum_failure",
            "page failed checksum verification on read".to_owned(),
        );
    }

    /// Current counters.
    pub fn snapshot(&self) -> FaultSnapshot {
        FaultSnapshot {
            transient: self.stats.transient.load(Ordering::Relaxed),
            slow: self.stats.slow.load(Ordering::Relaxed),
            bit_flips: self.stats.bit_flips.load(Ordering::Relaxed),
            torn_writes: self.stats.torn_writes.load(Ordering::Relaxed),
            checksum_failures: self.stats.checksum_failures.load(Ordering::Relaxed),
            retries: self.stats.retries.load(Ordering::Relaxed),
            quarantined: self.stats.quarantined.load(Ordering::Relaxed),
        }
    }

    /// Publishes the counters as gauges into an `xkw-obs` registry.
    pub fn export_metrics(&self, registry: &xkw_obs::Registry) {
        let s = self.snapshot();
        registry.gauge("xkw_faults_transient").set(s.transient);
        registry.gauge("xkw_faults_slow").set(s.slow);
        registry.gauge("xkw_faults_bit_flips").set(s.bit_flips);
        registry.gauge("xkw_faults_torn_writes").set(s.torn_writes);
        registry
            .gauge("xkw_faults_checksum_failures")
            .set(s.checksum_failures);
        registry.gauge("xkw_fault_retries").set(s.retries);
        registry.gauge("xkw_pages_quarantined").set(s.quarantined);
    }
}

/// The outcome of consulting read-path rules for one attempt.
#[derive(Debug, Default, Clone, Copy)]
pub struct ReadDecision {
    /// Extra simulated latency to pay (slow-page rules).
    pub extra_ns: u64,
    /// Fail the attempt outright (transient rules).
    pub fault: Option<ReadFault>,
    /// Flip the bit selected by this hash in the returned copy.
    pub flip_bit: Option<u64>,
}

/// splitmix64 finalizer — the same mixer as the vendored `rand` shim.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Pure decision function: does `rule` fire for `(page, attempt)`?
fn fires(seed: u64, salt: u64, page: u32, attempt: u32, p: f64) -> bool {
    if p >= 1.0 {
        return true;
    }
    if p <= 0.0 {
        return false;
    }
    let h = splitmix(seed ^ splitmix(salt ^ (u64::from(page) << 32) ^ u64::from(attempt)));
    ((h >> 11) as f64) < p * (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_grammar() {
        let spec = FaultSpec::parse(
            "seed=42; transient:p=0.25; slow:table=cr.PL@c0,ns=250000; bitflip:pages=3..9,p=0.5; torn",
        )
        .unwrap();
        assert_eq!(spec.seed, 42);
        assert_eq!(spec.rules.len(), 4);
        assert_eq!(spec.rules[0].kind, FaultKind::TransientRead);
        assert_eq!(spec.rules[0].probability, 0.25);
        assert_eq!(
            spec.rules[1].target,
            FaultTarget::Table("cr.PL@c0".to_owned())
        );
        assert_eq!(spec.rules[1].slow_ns, 250_000);
        assert_eq!(
            spec.rules[2].target,
            FaultTarget::Pages { start: 3, end: 9 }
        );
        assert_eq!(spec.rules[3].kind, FaultKind::TornWrite);
        assert_eq!(spec.rules[3].probability, 1.0);
        assert!(!spec.is_transient_only());
        assert!(FaultSpec::parse("seed=1;transient:p=0.5;slow")
            .unwrap()
            .is_transient_only());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultSpec::parse("explode").is_err());
        assert!(FaultSpec::parse("transient:p=2.0").is_err());
        assert!(FaultSpec::parse("transient:pages=9").is_err());
        assert!(FaultSpec::parse("seed=x").is_err());
        assert!(FaultSpec::parse("slow:volume=11").is_err());
    }

    #[test]
    fn parse_wal_fault_kinds() {
        let spec = FaultSpec::parse("seed=7;crash:at=3").unwrap();
        assert_eq!(spec.seed, 7);
        assert_eq!(
            spec.wal_fault(),
            Some(WalFault {
                kind: FaultKind::Crash,
                at: 3
            })
        );
        assert!(!spec.is_transient_only());
        let spec = FaultSpec::parse("wal_short:at=0").unwrap();
        assert_eq!(spec.wal_fault().unwrap().kind, FaultKind::WalShort);
        assert_eq!(spec.wal_fault().unwrap().at, 0);
        let spec = FaultSpec::parse("wal_torn:at=12").unwrap();
        assert_eq!(spec.wal_fault().unwrap().kind, FaultKind::WalTorn);
        // Page faults and WAL faults can ride in one spec; the page layer
        // sees only the page rules.
        let spec = FaultSpec::parse("seed=1;transient:p=0.5;crash:at=2").unwrap();
        assert_eq!(spec.rules.len(), 2);
        assert!(spec.wal_fault().is_some());
        let layer = FaultLayer::default();
        layer.install(spec);
        assert_eq!(layer.on_read(0, 3).fault, None, "crash rule stays inert");
    }

    #[test]
    fn parse_rejects_malformed_wal_faults() {
        // WAL kinds demand an explicit record index …
        assert!(FaultSpec::parse("crash").is_err());
        assert!(FaultSpec::parse("wal_torn").is_err());
        assert!(FaultSpec::parse("crash:at=x").is_err());
        // … and accept no page-style keys.
        assert!(FaultSpec::parse("crash:p=0.5").is_err());
        assert!(FaultSpec::parse("wal_short:at=1,table=cr.PL@c0").is_err());
        assert!(FaultSpec::parse("wal_torn:pages=0..4").is_err());
        // `at` is a WAL concept; page kinds reject it.
        assert!(FaultSpec::parse("transient:at=3").is_err());
    }

    #[test]
    fn decisions_are_pure_functions_of_inputs() {
        for page in 0..64u32 {
            for attempt in 0..MAX_READ_ATTEMPTS {
                let a = fires(7, 13, page, attempt, 0.3);
                let b = fires(7, 13, page, attempt, 0.3);
                assert_eq!(a, b);
            }
        }
        // Different seeds give different fault sets (overwhelmingly).
        let hits =
            |seed: u64| -> Vec<u32> { (0..256).filter(|&p| fires(seed, 1, p, 0, 0.3)).collect() };
        assert_ne!(hits(1), hits(2));
    }

    #[test]
    fn transient_never_fires_on_final_attempt() {
        let layer = FaultLayer::default();
        layer.install(FaultSpec::new(9).rule(FaultKind::TransientRead, FaultTarget::All, 1.0));
        for page in 0..32 {
            for attempt in 0..MAX_READ_ATTEMPTS - 1 {
                assert_eq!(
                    layer.on_read(page, attempt).fault,
                    Some(ReadFault::Transient)
                );
            }
            assert_eq!(layer.on_read(page, MAX_READ_ATTEMPTS - 1).fault, None);
        }
    }

    #[test]
    fn table_rules_resolve_to_page_ranges() {
        let layer = FaultLayer::default();
        layer.install(FaultSpec::new(1).rule(
            FaultKind::TransientRead,
            FaultTarget::Table("t".to_owned()),
            1.0,
        ));
        // Unresolved: inert.
        assert_eq!(layer.on_read(5, 0).fault, None);
        layer.resolve_table("other", 0, 100);
        assert_eq!(layer.on_read(5, 0).fault, None);
        layer.resolve_table("t", 4, 3); // pages 4..7
        assert_eq!(layer.on_read(5, 0).fault, Some(ReadFault::Transient));
        assert_eq!(layer.on_read(3, 0).fault, None);
        assert_eq!(layer.on_read(7, 0).fault, None);
    }

    #[test]
    fn quarantine_and_stats() {
        let layer = FaultLayer::default();
        assert!(!layer.is_quarantined(3));
        layer.arm_checks();
        layer.quarantine(3);
        layer.quarantine(3);
        assert!(layer.is_quarantined(3));
        assert!(!layer.is_quarantined(4));
        assert_eq!(layer.snapshot().quarantined, 1);
        layer.clear();
        assert!(!layer.is_quarantined(3));
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let layer = FaultLayer::default();
        layer.install(FaultSpec::new(77));
        for page in 0..16 {
            for attempt in 1..MAX_READ_ATTEMPTS {
                let j = layer.jitter(page, attempt);
                assert!((0.75..1.25).contains(&j), "{j}");
                assert_eq!(j.to_bits(), layer.jitter(page, attempt).to_bits());
            }
        }
    }
}
