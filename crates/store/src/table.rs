//! Heap tables, clustered (index-organized) tables and B-tree indexes.
//!
//! Connection relations are fixed-arity tuples of target-object ids. A
//! [`Table`] is bulk-loaded once at decomposition time and read-only
//! afterwards, matching XKeyword's load/query split. Physical design is
//! chosen per relation via [`PhysicalOptions`]:
//!
//! * `clustered_on` — the relation is physically sorted on these columns
//!   (Oracle's index-organized tables; the paper: *"performance is
//!   dramatically improved when a connection relation R is clustered on
//!   the direction that R is used"*). Prefix lookups become binary
//!   searches plus sequential page reads.
//! * `indexes` — secondary composite B-tree indexes; lookups return row
//!   locations which are then fetched through the buffer pool (random
//!   page probes).
//!
//! Without either, lookups degrade to full scans — the paper's
//! `MinNClustNIndx` configuration.

use crate::buffer::BufferPool;
use crate::error::StoreError;
use crate::page::{Disk, Page, PageId, PageWriter, PAGE_U32S};
use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::atomic::{AtomicU64, Ordering};

/// A target-object id (the only datatype connection relations store).
pub type Id = u32;

/// A materialized tuple.
pub type Row = Box<[Id]>;

/// Physical design options for a table.
#[derive(Debug, Clone, Default)]
pub struct PhysicalOptions {
    /// Physical sort order; a lookup on a prefix of these columns is a
    /// clustered range scan.
    pub clustered_on: Option<Vec<usize>>,
    /// Secondary composite indexes (each a column list).
    pub indexes: Vec<Vec<usize>>,
}

impl PhysicalOptions {
    /// No clustering, no indexes (pure heap — `MinNClustNIndx`).
    pub fn heap() -> Self {
        Self::default()
    }

    /// Clustered on the given columns.
    pub fn clustered(cols: &[usize]) -> Self {
        Self {
            clustered_on: Some(cols.to_vec()),
            indexes: Vec::new(),
        }
    }

    /// Single-attribute secondary indexes on every column of an
    /// `arity`-wide table (the paper's `MinNClustIndx`).
    pub fn indexed_all(arity: usize) -> Self {
        Self {
            clustered_on: None,
            indexes: (0..arity).map(|c| vec![c]).collect(),
        }
    }
}

/// Which access path served a lookup (exposed for tests and experiment
/// reporting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPath {
    /// Binary search on the cluster key + sequential page reads.
    ClusteredRange,
    /// Secondary B-tree probe + random row fetches.
    SecondaryIndex,
    /// Sequential scan with a filter.
    FullScan,
}

/// A secondary B-tree index: key → row locations.
type IndexMap = BTreeMap<Box<[Id]>, Vec<u32>>;

/// An immutable, bulk-loaded relation.
#[derive(Debug)]
pub struct Table {
    name: String,
    arity: usize,
    rows_per_page: usize,
    n_rows: usize,
    pages: Vec<PageId>,
    cluster_key: Option<Vec<usize>>,
    /// First cluster-key value of each page, for binary search.
    fences: Vec<Vec<Id>>,
    indexes: Vec<(Vec<usize>, IndexMap)>,
    /// Cumulative buffer-pool requests issued on behalf of this table
    /// (every `pool.fetch` the table performs, hit or miss).
    logical: AtomicU64,
}

impl Table {
    /// Bulk-loads `rows` onto `disk` with the given physical options.
    ///
    /// # Panics
    /// Panics if a row has the wrong arity or a column list is invalid.
    pub fn build(
        disk: &Disk,
        name: &str,
        arity: usize,
        mut rows: Vec<Row>,
        options: PhysicalOptions,
    ) -> Table {
        assert!(arity > 0 && arity <= PAGE_U32S, "bad arity {arity}");
        for r in &rows {
            assert_eq!(r.len(), arity, "row arity mismatch in table {name}");
        }
        if let Some(key) = &options.clustered_on {
            assert!(key.iter().all(|&c| c < arity), "bad cluster column");
            rows.sort_unstable_by(|a, b| {
                key.iter()
                    .map(|&c| a[c].cmp(&b[c]))
                    .find(|o| o.is_ne())
                    .unwrap_or_else(|| a.cmp(b))
            });
        }
        let rows_per_page = PAGE_U32S / arity;
        let mut writer = PageWriter::new(disk);
        let mut fences = Vec::new();
        for (i, r) in rows.iter().enumerate() {
            if let Some(key) = &options.clustered_on {
                if i % rows_per_page == 0 {
                    fences.push(key.iter().map(|&c| r[c]).collect());
                }
            }
            writer.write_tuple(r);
        }
        let pages = writer.finish();
        let mut indexes = Vec::new();
        for cols in &options.indexes {
            assert!(cols.iter().all(|&c| c < arity), "bad index column");
            let mut map: IndexMap = BTreeMap::new();
            for (i, r) in rows.iter().enumerate() {
                let key: Box<[Id]> = cols.iter().map(|&c| r[c]).collect();
                map.entry(key).or_default().push(i as u32);
            }
            indexes.push((cols.clone(), map));
        }
        Table {
            name: name.to_owned(),
            arity,
            rows_per_page,
            n_rows: rows.len(),
            pages,
            cluster_key: options.clustered_on,
            fences,
            indexes,
            logical: AtomicU64::new(0),
        }
    }

    /// The table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Tuple width.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.n_rows
    }

    /// Number of pages occupied.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// The table's first page id on disk (`None` for empty tables).
    /// Builds run under the catalog lock, so a table's pages are one
    /// contiguous run starting here — which is how fault rules targeting
    /// a table resolve to a page range.
    pub fn first_page(&self) -> Option<PageId> {
        self.pages.first().copied()
    }

    /// The cluster key, if index-organized.
    pub fn cluster_key(&self) -> Option<&[usize]> {
        self.cluster_key.as_deref()
    }

    /// Cumulative logical I/O (buffer-pool requests) this table has issued.
    pub fn logical_io(&self) -> u64 {
        self.logical.load(Ordering::Relaxed)
    }

    /// Fetches row `i` through the buffer pool.
    ///
    /// # Panics
    /// Panics on an unreadable page; see [`Table::try_row`].
    pub fn row(&self, disk: &Disk, pool: &BufferPool, i: u32) -> Row {
        self.try_row(disk, pool, i)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fetches row `i` through the buffer pool, reporting unreadable
    /// pages as [`StoreError::CorruptPage`] instead of panicking.
    ///
    /// # Errors
    /// [`StoreError::CorruptPage`] when the page exhausted its read
    /// retries or is quarantined.
    pub fn try_row(&self, disk: &Disk, pool: &BufferPool, i: u32) -> Result<Row, StoreError> {
        let i = i as usize;
        assert!(i < self.n_rows, "row index out of range");
        let page = self.pages[i / self.rows_per_page];
        self.logical.fetch_add(1, Ordering::Relaxed);
        let data: Page = pool
            .try_fetch(disk, page)
            .map_err(|e| StoreError::from_page_fault(&self.name, e))?;
        let off = (i % self.rows_per_page) * self.arity;
        Ok(data[off..off + self.arity].into())
    }

    /// Sequentially scans the whole table.
    pub fn scan<'a>(&'a self, disk: &'a Disk, pool: &'a BufferPool) -> Scan<'a> {
        Scan {
            table: self,
            disk,
            pool,
            next: 0,
            end: self.n_rows as u32,
            page: None,
        }
    }

    /// Whether `cols` is a prefix of the cluster key.
    pub fn is_cluster_prefix(&self, cols: &[usize]) -> bool {
        self.cluster_key
            .as_deref()
            .is_some_and(|k| cols.len() <= k.len() && k[..cols.len()] == *cols)
    }

    /// Whether some secondary index has `cols` as a key prefix.
    pub fn has_index_prefix(&self, cols: &[usize]) -> bool {
        self.indexes
            .iter()
            .any(|(icols, _)| cols.len() <= icols.len() && icols[..cols.len()] == *cols)
    }

    /// Looks up all rows whose `cols` equal `key`, picking the best access
    /// path; returns the rows and the path used.
    ///
    /// # Panics
    /// Panics on an unreadable page; see [`Table::try_probe`].
    pub fn probe(
        &self,
        disk: &Disk,
        pool: &BufferPool,
        cols: &[usize],
        key: &[Id],
    ) -> (Vec<Row>, AccessPath) {
        self.try_probe(disk, pool, cols, key)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Looks up all rows whose `cols` equal `key`, reporting unreadable
    /// pages as typed errors instead of panicking.
    ///
    /// # Errors
    /// [`StoreError::CorruptPage`] when a page needed by the lookup
    /// exhausted its read retries or is quarantined.
    pub fn try_probe(
        &self,
        disk: &Disk,
        pool: &BufferPool,
        cols: &[usize],
        key: &[Id],
    ) -> Result<(Vec<Row>, AccessPath), StoreError> {
        assert_eq!(cols.len(), key.len());
        if self.is_cluster_prefix(cols) {
            return Ok((
                self.clustered_range(disk, pool, cols, key)?,
                AccessPath::ClusteredRange,
            ));
        }
        if let Some((icols, map)) = self
            .indexes
            .iter()
            .find(|(icols, _)| cols.len() <= icols.len() && icols[..cols.len()] == *cols)
        {
            let mut rows = Vec::new();
            if icols.len() == cols.len() {
                if let Some(locs) = map.get(key) {
                    for &i in locs {
                        rows.push(self.try_row(disk, pool, i)?);
                    }
                }
            } else {
                for (_, locs) in prefix_range(map, key) {
                    for &i in locs {
                        rows.push(self.try_row(disk, pool, i)?);
                    }
                }
            }
            return Ok((rows, AccessPath::SecondaryIndex));
        }
        let rows = self.try_scan_filter(disk, pool, cols, key)?;
        Ok((rows, AccessPath::FullScan))
    }

    /// Sequentially scans the whole table into a vector, reporting
    /// unreadable pages as typed errors instead of panicking.
    ///
    /// # Errors
    /// [`StoreError::CorruptPage`] for unreadable pages.
    pub fn try_scan_all(&self, disk: &Disk, pool: &BufferPool) -> Result<Vec<Row>, StoreError> {
        self.try_scan_filter(disk, pool, &[], &[])
    }

    /// Streaming sequential scan keeping rows whose `cols` equal `key`
    /// (everything when `cols` is empty). One pool fetch per page, like
    /// [`Scan`].
    fn try_scan_filter(
        &self,
        disk: &Disk,
        pool: &BufferPool,
        cols: &[usize],
        key: &[Id],
    ) -> Result<Vec<Row>, StoreError> {
        let mut out = Vec::new();
        let mut cached: Option<(usize, Page)> = None;
        for i in 0..self.n_rows {
            let page_no = i / self.rows_per_page;
            if !matches!(&cached, Some((p, _)) if *p == page_no) {
                self.logical.fetch_add(1, Ordering::Relaxed);
                let data = pool
                    .try_fetch(disk, self.pages[page_no])
                    .map_err(|e| StoreError::from_page_fault(&self.name, e))?;
                cached = Some((page_no, data));
            }
            let (_, data) = cached.as_ref().unwrap();
            let off = (i % self.rows_per_page) * self.arity;
            let row = &data[off..off + self.arity];
            if cols.iter().zip(key).all(|(&c, &v)| row[c] == v) {
                out.push(row.into());
            }
        }
        Ok(out)
    }

    /// Clustered prefix range scan: binary search for the first matching
    /// row (fences narrow it to a two-page window), then read forward
    /// sequentially while the prefix matches.
    fn clustered_range(
        &self,
        disk: &Disk,
        pool: &BufferPool,
        cols: &[usize],
        key: &[Id],
    ) -> Result<Vec<Row>, StoreError> {
        // First page whose fence is >= key; the run may begin on the page
        // before it, so step one page back.
        let start_page = self
            .fences
            .partition_point(|f| f[..cols.len()].cmp(key) == std::cmp::Ordering::Less)
            .saturating_sub(1);
        let lo = start_page * self.rows_per_page;
        let hi = ((start_page + 2) * self.rows_per_page).min(self.n_rows);
        // Binary search within [lo, hi) for the first row >= key.
        let (mut a, mut b) = (lo, hi);
        while a < b {
            let mid = (a + b) / 2;
            let r = self.try_row(disk, pool, mid as u32)?;
            let probe: Vec<Id> = cols.iter().map(|&c| r[c]).collect();
            if probe.as_slice() < key {
                a = mid + 1;
            } else {
                b = mid;
            }
        }
        let mut out = Vec::new();
        let mut i = a as u32;
        while (i as usize) < self.n_rows {
            let r = self.try_row(disk, pool, i)?;
            let probe: Vec<Id> = cols.iter().map(|&c| r[c]).collect();
            if probe.as_slice() == key {
                out.push(r);
            } else {
                break;
            }
            i += 1;
        }
        Ok(out)
    }
}

/// Range over a composite B-tree index by key prefix.
fn prefix_range<'m>(
    map: &'m IndexMap,
    prefix: &[Id],
) -> impl Iterator<Item = (&'m Box<[Id]>, &'m Vec<u32>)> {
    let lower: Box<[Id]> = prefix.into();
    let upper: Option<Box<[Id]>> = {
        let mut v: Vec<Id> = prefix.to_vec();
        match v.last_mut() {
            Some(last) if *last < Id::MAX => {
                *last += 1;
                Some(v.into())
            }
            _ => None,
        }
    };
    let prefix_owned: Box<[Id]> = prefix.into();
    let bound = match upper {
        Some(u) => (Bound::Included(lower), Bound::Excluded(u)),
        None => (Bound::Included(lower), Bound::Unbounded),
    };
    map.range(bound)
        .filter(move |(k, _)| k[..prefix_owned.len()] == *prefix_owned)
}

/// Sequential scan iterator.
pub struct Scan<'a> {
    table: &'a Table,
    disk: &'a Disk,
    pool: &'a BufferPool,
    next: u32,
    end: u32,
    page: Option<(usize, Page)>,
}

impl Iterator for Scan<'_> {
    type Item = Row;

    fn next(&mut self) -> Option<Row> {
        if self.next >= self.end {
            return None;
        }
        let i = self.next as usize;
        self.next += 1;
        let page_no = i / self.table.rows_per_page;
        let reuse = matches!(&self.page, Some((p, _)) if *p == page_no);
        if !reuse {
            self.table.logical.fetch_add(1, Ordering::Relaxed);
            let data = self.pool.fetch(self.disk, self.table.pages[page_no]);
            self.page = Some((page_no, data));
        }
        let (_, data) = self.page.as_ref().unwrap();
        let off = (i % self.table.rows_per_page) * self.table.arity;
        Some(data[off..off + self.table.arity].into())
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = (self.end - self.next) as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Scan<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(pairs: &[(Id, Id)]) -> Vec<Row> {
        pairs.iter().map(|&(a, b)| vec![a, b].into()).collect()
    }

    fn fixture() -> (Disk, BufferPool) {
        (Disk::new(), BufferPool::new(8))
    }

    #[test]
    fn scan_returns_all_rows() {
        let (disk, pool) = fixture();
        let data = rows(&[(1, 10), (2, 20), (3, 30)]);
        let t = Table::build(&disk, "r", 2, data.clone(), PhysicalOptions::heap());
        let got: Vec<Row> = t.scan(&disk, &pool).collect();
        assert_eq!(got, data);
        assert_eq!(t.row_count(), 3);
    }

    #[test]
    fn heap_probe_uses_full_scan() {
        let (disk, pool) = fixture();
        let t = Table::build(
            &disk,
            "r",
            2,
            rows(&[(1, 10), (2, 20), (1, 30)]),
            PhysicalOptions::heap(),
        );
        let (got, path) = t.probe(&disk, &pool, &[0], &[1]);
        assert_eq!(path, AccessPath::FullScan);
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn secondary_index_probe() {
        let (disk, pool) = fixture();
        let t = Table::build(
            &disk,
            "r",
            2,
            rows(&[(1, 10), (2, 20), (1, 30)]),
            PhysicalOptions::indexed_all(2),
        );
        let (got, path) = t.probe(&disk, &pool, &[0], &[1]);
        assert_eq!(path, AccessPath::SecondaryIndex);
        assert_eq!(got.len(), 2);
        let (got, _) = t.probe(&disk, &pool, &[1], &[20]);
        assert_eq!(got, rows(&[(2, 20)]));
        let (got, _) = t.probe(&disk, &pool, &[1], &[99]);
        assert!(got.is_empty());
    }

    #[test]
    fn clustered_probe_and_order() {
        let (disk, pool) = fixture();
        let t = Table::build(
            &disk,
            "r",
            2,
            rows(&[(3, 1), (1, 2), (2, 3), (1, 1), (3, 0)]),
            PhysicalOptions::clustered(&[0, 1]),
        );
        // Physically sorted.
        let got: Vec<Row> = t.scan(&disk, &pool).collect();
        assert_eq!(got, rows(&[(1, 1), (1, 2), (2, 3), (3, 0), (3, 1)]));
        let (hit, path) = t.probe(&disk, &pool, &[0], &[1]);
        assert_eq!(path, AccessPath::ClusteredRange);
        assert_eq!(hit, rows(&[(1, 1), (1, 2)]));
        let (hit, _) = t.probe(&disk, &pool, &[0, 1], &[3, 1]);
        assert_eq!(hit, rows(&[(3, 1)]));
        // Non-prefix column falls back to scan.
        let (_, path) = t.probe(&disk, &pool, &[1], &[1]);
        assert_eq!(path, AccessPath::FullScan);
    }

    #[test]
    fn clustered_range_spanning_pages() {
        let (disk, pool) = fixture();
        // 1024 rows/page at arity 2; make 3 pages with a big duplicate run
        // crossing the first page boundary.
        let mut data = Vec::new();
        for i in 0..1500u32 {
            data.push(vec![if i < 1200 { 7 } else { 8 }, i].into());
        }
        let t = Table::build(&disk, "big", 2, data, PhysicalOptions::clustered(&[0]));
        assert!(t.page_count() >= 2);
        let (hit, path) = t.probe(&disk, &pool, &[0], &[7]);
        assert_eq!(path, AccessPath::ClusteredRange);
        assert_eq!(hit.len(), 1200);
        let (hit, _) = t.probe(&disk, &pool, &[0], &[8]);
        assert_eq!(hit.len(), 300);
        let (hit, _) = t.probe(&disk, &pool, &[0], &[9]);
        assert!(hit.is_empty());
    }

    #[test]
    fn composite_index_prefix_lookup() {
        let (disk, pool) = fixture();
        let t = Table::build(
            &disk,
            "r",
            3,
            vec![
                vec![1, 5, 100].into(),
                vec![1, 6, 101].into(),
                vec![2, 5, 102].into(),
            ],
            PhysicalOptions {
                clustered_on: None,
                indexes: vec![vec![0, 1]],
            },
        );
        let (got, path) = t.probe(&disk, &pool, &[0], &[1]);
        assert_eq!(path, AccessPath::SecondaryIndex);
        assert_eq!(got.len(), 2);
        let (got, _) = t.probe(&disk, &pool, &[0, 1], &[2, 5]);
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn scan_io_is_sequential() {
        let (disk, _) = fixture();
        let pool = BufferPool::new(2);
        let data: Vec<Row> = (0..3000u32).map(|i| vec![i, i].into()).collect();
        let t = Table::build(&disk, "r", 2, data, PhysicalOptions::heap());
        let pages = t.page_count() as u64;
        let n = t.scan(&disk, &pool).count();
        assert_eq!(n, 3000);
        // One miss per page even with a tiny pool.
        assert_eq!(pool.snapshot().misses, pages);
    }

    #[test]
    fn empty_table_is_fine() {
        let (disk, pool) = fixture();
        let t = Table::build(&disk, "e", 2, Vec::new(), PhysicalOptions::indexed_all(2));
        assert_eq!(t.scan(&disk, &pool).count(), 0);
        let (got, _) = t.probe(&disk, &pool, &[0], &[1]);
        assert!(got.is_empty());
    }
}
