//! Structured tracing: spans with enter/exit timestamps, parent links,
//! and a lock-striped global collector.
//!
//! A span is opened with the [`span!`](crate::span!) macro and closed by
//! dropping the returned [`SpanGuard`] (RAII). Parentage is the innermost
//! span still open *on the same thread* at open time, tracked by a
//! thread-local stack, so nested calls produce a tree per thread with no
//! synchronization on the enter path. Finished spans are appended to one
//! of [`STRIPES`] mutex-striped vectors picked by thread id, so worker
//! threads finishing spans concurrently almost never contend.
//!
//! Exports: [`chrome_trace_json`] renders a drained batch as a Chrome
//! `trace_event` JSON array (complete events, `"ph":"X"`, loadable in
//! `about:tracing` / Perfetto); [`render_tree`] renders it as an
//! indented text tree for terminals.
//!
//! When collection is disabled (the default) the macro returns an inert
//! guard after a single relaxed atomic load; no field value is built, no
//! clock is read, no allocation happens.

use crate::push_json_str;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// A field value attached to a span.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// Borrowed string (field names and most labels are literals).
    Str(&'static str),
    /// Owned string (e.g. a relation name built at runtime).
    Owned(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Str(if v { "true" } else { "false" })
    }
}
impl From<&'static str> for FieldValue {
    fn from(v: &'static str) -> Self {
        FieldValue::Str(v)
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Owned(v)
    }
}

impl std::fmt::Display for FieldValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
            FieldValue::Owned(v) => write!(f, "{v}"),
        }
    }
}

/// A finished span as stored in the collector.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Unique id (monotonic across the process).
    pub id: u64,
    /// Id of the span that was open on this thread when this one opened.
    pub parent: Option<u64>,
    /// The span name (a `"stage.operation"` literal; see the taxonomy in
    /// DESIGN.md §observability).
    pub name: &'static str,
    /// Named fields recorded at open time or via [`SpanGuard::record`].
    pub fields: Vec<(&'static str, FieldValue)>,
    /// Open timestamp, nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Wall time between open and drop, nanoseconds.
    pub dur_ns: u64,
    /// Dense per-process id of the thread the span ran on.
    pub tid: u64,
}

/// Opens a span. Checks the global enable flag *before* evaluating any
/// field expression; disabled, it costs one relaxed atomic load.
///
/// ```
/// let _guard = xkw_obs::span!("exec.join", cn = 3usize, rows = 42u64);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::trace::start_span(
                $name,
                ::std::vec![$((stringify!($key), $crate::trace::FieldValue::from($value))),*],
            )
        } else {
            $crate::trace::SpanGuard::inert()
        }
    };
}

/// Stripe count of the collector; thread ids map onto stripes round-robin.
const STRIPES: usize = 16;

/// Default total span capacity across all stripes. The collector is a
/// bounded ring: once a stripe fills, new spans overwrite its oldest
/// undrained span (and [`spans_dropped`] counts the loss), so leaving
/// tracing enabled without draining costs fixed memory instead of
/// growing forever.
pub const DEFAULT_SPAN_CAP: usize = 65_536;

/// A stripe of the collector: spans plus a write cursor used for
/// ring-overwrite once the stripe is at capacity.
struct Stripe {
    spans: Vec<SpanRecord>,
    cursor: usize,
}

static COLLECTOR: [Mutex<Stripe>; STRIPES] = [const {
    Mutex::new(Stripe {
        spans: Vec::new(),
        cursor: 0,
    })
}; STRIPES];

/// Total span capacity, split evenly across stripes.
static SPAN_CAP: std::sync::atomic::AtomicUsize =
    std::sync::atomic::AtomicUsize::new(DEFAULT_SPAN_CAP);

/// Spans overwritten before anyone drained them.
static DROPPED: AtomicU64 = AtomicU64::new(0);

/// Caps total collector memory at `cap` spans (min [`STRIPES`]). Spans
/// past the cap overwrite the oldest undrained span in their stripe.
pub fn set_span_cap(cap: usize) {
    SPAN_CAP.store(cap.max(STRIPES), Ordering::Relaxed);
}

/// Spans lost to ring-overwrite since the process started (monotonic;
/// draining does not reset it).
pub fn spans_dropped() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_TID: AtomicU64 = AtomicU64::new(0);
static EPOCH: OnceLock<Instant> = OnceLock::new();

thread_local! {
    /// Dense thread id, assigned on first span.
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    /// Ids of the spans currently open on this thread, outermost first.
    static OPEN: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Nanoseconds since the trace epoch (set on first use).
fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

struct ActiveSpan {
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    fields: Vec<(&'static str, FieldValue)>,
    start_ns: u64,
}

/// An RAII guard: the span closes (and is recorded) when this drops.
/// Inert guards (tracing disabled) record nothing.
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl SpanGuard {
    /// The no-op guard the [`span!`](crate::span!) macro returns while
    /// collection is disabled.
    #[inline(always)]
    pub const fn inert() -> Self {
        SpanGuard { active: None }
    }

    /// Attaches another field after the span opened (e.g. a row count
    /// known only at the end). No-op on inert guards.
    pub fn record<V: Into<FieldValue>>(&mut self, key: &'static str, value: V) {
        if let Some(a) = &mut self.active {
            a.fields.push((key, value.into()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(a) = self.active.take() else { return };
        let dur_ns = now_ns().saturating_sub(a.start_ns);
        OPEN.with(|open| {
            let mut open = open.borrow_mut();
            // Guards normally drop innermost-first; `retain` keeps the
            // stack sane even if a caller reorders drops.
            if open.last() == Some(&a.id) {
                open.pop();
            } else {
                open.retain(|&id| id != a.id);
            }
        });
        let tid = TID.with(|t| *t);
        let record = SpanRecord {
            id: a.id,
            parent: a.parent,
            name: a.name,
            fields: a.fields,
            start_ns: a.start_ns,
            dur_ns,
            tid,
        };
        let per_stripe = (SPAN_CAP.load(Ordering::Relaxed) / STRIPES).max(1);
        let mut stripe = COLLECTOR[(tid as usize) % STRIPES]
            .lock()
            .expect("span stripe poisoned");
        if stripe.spans.len() < per_stripe {
            stripe.spans.push(record);
        } else {
            let at = stripe.cursor % per_stripe;
            stripe.spans[at] = record;
            stripe.cursor = stripe.cursor.wrapping_add(1);
            DROPPED.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Opens a span unconditionally. Use the [`span!`](crate::span!) macro
/// instead, which checks the enable flag first.
pub fn start_span(name: &'static str, fields: Vec<(&'static str, FieldValue)>) -> SpanGuard {
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = OPEN.with(|open| {
        let mut open = open.borrow_mut();
        let parent = open.last().copied();
        open.push(id);
        parent
    });
    SpanGuard {
        active: Some(ActiveSpan {
            id,
            parent,
            name,
            fields,
            start_ns: now_ns(),
        }),
    }
}

/// Drains every stripe, returning all finished spans sorted by start
/// time. Spans recorded after the drain begins land in the next drain.
pub fn take_spans() -> Vec<SpanRecord> {
    let mut all: Vec<SpanRecord> = Vec::new();
    for stripe in &COLLECTOR {
        let mut stripe = stripe.lock().expect("span stripe poisoned");
        all.append(&mut stripe.spans);
        stripe.cursor = 0;
    }
    all.sort_by_key(|s| (s.start_ns, s.id));
    all
}

/// Discards all finished spans.
pub fn clear_spans() {
    for stripe in &COLLECTOR {
        let mut stripe = stripe.lock().expect("span stripe poisoned");
        stripe.spans.clear();
        stripe.cursor = 0;
    }
}

/// Renders spans as a Chrome `trace_event` JSON array, loadable in
/// `about:tracing` or Perfetto. The array opens with `"ph":"M"`
/// metadata events — one `process_name` plus a `thread_name` per
/// distinct tid in the batch, so the viewer labels tracks instead of
/// showing bare numbers — followed by one complete event (`"ph":"X"`,
/// timestamps in microseconds) per span. Fields become `args`.
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    let mut out = String::with_capacity(spans.len() * 96 + 128);
    out.push('[');
    out.push_str(
        "\n  {\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"xkeyword\"}}",
    );
    let tids: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.tid).collect();
    for tid in &tids {
        let label = if *tid == 0 {
            "main".to_owned()
        } else {
            format!("worker-{tid}")
        };
        out.push_str(&format!(
            ",\n  {{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"args\":{{\"name\":\"{label}\"}}}}"
        ));
    }
    for s in spans.iter() {
        out.push(',');
        out.push_str("\n  {\"name\":");
        push_json_str(&mut out, s.name);
        out.push_str(",\"cat\":\"xkw\",\"ph\":\"X\",\"pid\":1,\"tid\":");
        out.push_str(&s.tid.to_string());
        out.push_str(&format!(
            ",\"ts\":{:.3},\"dur\":{:.3}",
            s.start_ns as f64 / 1000.0,
            s.dur_ns as f64 / 1000.0
        ));
        out.push_str(",\"args\":{\"span_id\":");
        out.push_str(&s.id.to_string());
        if let Some(p) = s.parent {
            out.push_str(",\"parent\":");
            out.push_str(&p.to_string());
        }
        for (k, v) in &s.fields {
            out.push(',');
            push_json_str(&mut out, k);
            out.push(':');
            match v {
                FieldValue::U64(n) => out.push_str(&n.to_string()),
                FieldValue::I64(n) => out.push_str(&n.to_string()),
                FieldValue::F64(n) if n.is_finite() => out.push_str(&n.to_string()),
                FieldValue::F64(_) => out.push_str("null"),
                FieldValue::Str(t) => push_json_str(&mut out, t),
                FieldValue::Owned(t) => push_json_str(&mut out, t),
            }
        }
        out.push_str("}}");
    }
    out.push_str("\n]\n");
    out
}

/// Formats a nanosecond duration for humans (`871 ns`, `14.3 µs`,
/// `2.08 ms`, `1.45 s`).
pub fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=999 => format!("{ns} ns"),
        1_000..=999_999 => format!("{:.1} µs", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.2} ms", ns as f64 / 1e6),
        _ => format!("{:.2} s", ns as f64 / 1e9),
    }
}

/// Renders spans as an indented text tree, one tree per thread, children
/// ordered by start time. Spans whose parent is absent from the batch
/// (still open, or drained earlier) are treated as roots.
pub fn render_tree(spans: &[SpanRecord]) -> String {
    let mut by_start: Vec<&SpanRecord> = spans.iter().collect();
    by_start.sort_by_key(|s| (s.start_ns, s.id));
    let present: std::collections::HashSet<u64> = spans.iter().map(|s| s.id).collect();
    let mut children: std::collections::HashMap<u64, Vec<&SpanRecord>> =
        std::collections::HashMap::new();
    let mut roots: Vec<&SpanRecord> = Vec::new();
    for s in &by_start {
        match s.parent.filter(|p| present.contains(p)) {
            Some(p) => children.entry(p).or_default().push(s),
            None => roots.push(s),
        }
    }
    let mut out = String::new();
    let tids: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.tid).collect();
    let many_threads = tids.len() > 1;
    let mut last_tid: Option<u64> = None;
    for root in roots {
        if many_threads && last_tid != Some(root.tid) {
            out.push_str(&format!("thread {}\n", root.tid));
            last_tid = Some(root.tid);
        }
        render_node(root, &children, 0, &mut out);
    }
    out
}

fn render_node(
    s: &SpanRecord,
    children: &std::collections::HashMap<u64, Vec<&SpanRecord>>,
    depth: usize,
    out: &mut String,
) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    out.push_str(s.name);
    out.push_str(&format!("  {}", fmt_ns(s.dur_ns)));
    for (k, v) in &s.fields {
        out.push_str(&format!("  {k}={v}"));
    }
    out.push('\n');
    if let Some(kids) = children.get(&s.id) {
        for kid in kids {
            render_node(kid, children, depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests here share the global flag and collector; serialize them.
    fn with_tracing<R>(f: impl FnOnce() -> R) -> R {
        let _g = crate::test_lock();
        clear_spans();
        crate::set_enabled(true);
        let r = f();
        crate::set_enabled(false);
        clear_spans();
        r
    }

    #[test]
    fn disabled_macro_records_nothing() {
        let _g = crate::test_lock();
        assert!(!crate::enabled());
        {
            let _s = crate::span!("noop.test", n = 1u64);
        }
        assert!(take_spans().iter().all(|s| s.name != "noop.test"));
    }

    #[test]
    fn nesting_links_parents() {
        let spans = with_tracing(|| {
            {
                let _outer = crate::span!("t.outer", z = 8usize);
                let _inner = crate::span!("t.inner");
            }
            take_spans()
        });
        let outer = spans.iter().find(|s| s.name == "t.outer").unwrap();
        let inner = spans.iter().find(|s| s.name == "t.inner").unwrap();
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.parent, None);
        assert!(outer.dur_ns >= inner.dur_ns);
        assert_eq!(outer.fields, vec![("z", FieldValue::U64(8))]);
        assert_eq!(outer.tid, inner.tid);
    }

    #[test]
    fn sibling_spans_share_a_parent() {
        let spans = with_tracing(|| {
            {
                let _root = crate::span!("t.root");
                let _a = crate::span!("t.a");
                drop(_a);
                let _b = crate::span!("t.b");
            }
            take_spans()
        });
        let root = spans.iter().find(|s| s.name == "t.root").unwrap();
        assert!(spans
            .iter()
            .filter(|s| s.name == "t.a" || s.name == "t.b")
            .all(|s| s.parent == Some(root.id)));
    }

    #[test]
    fn record_appends_fields() {
        let spans = with_tracing(|| {
            {
                let mut g = crate::span!("t.rec");
                g.record("rows", 7u64);
                g.record("rel", "R_x".to_string());
            }
            take_spans()
        });
        let s = spans.iter().find(|s| s.name == "t.rec").unwrap();
        assert_eq!(s.fields.len(), 2);
        assert_eq!(s.fields[0], ("rows", FieldValue::U64(7)));
    }

    #[test]
    fn spans_cross_threads_with_distinct_tids() {
        let spans = with_tracing(|| {
            std::thread::scope(|scope| {
                for _ in 0..2 {
                    scope.spawn(|| {
                        let _g = crate::span!("t.worker");
                    });
                }
            });
            take_spans()
        });
        let tids: std::collections::HashSet<u64> = spans
            .iter()
            .filter(|s| s.name == "t.worker")
            .map(|s| s.tid)
            .collect();
        assert_eq!(tids.len(), 2);
    }

    #[test]
    fn chrome_export_shape() {
        let spans = with_tracing(|| {
            {
                let _g = crate::span!("t.chrome", rel = "R_\"q\"".to_string(), n = 3u64);
            }
            take_spans()
        });
        let json = chrome_trace_json(&spans);
        assert!(json.trim_start().starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"t.chrome\""));
        assert!(json.contains("\"rel\":\"R_\\\"q\\\"\""));
        assert!(json.contains("\"n\":3"));
    }

    #[test]
    fn chrome_export_opens_with_metadata_events() {
        let spans = with_tracing(|| {
            {
                let _g = crate::span!("t.meta");
            }
            take_spans()
        });
        let json = chrome_trace_json(&spans);
        assert!(
            json.contains("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"xkeyword\"}}"),
            "{json}"
        );
        assert!(
            json.contains("\"name\":\"thread_name\",\"ph\":\"M\""),
            "{json}"
        );
        // Metadata precedes the first complete event.
        assert!(json.find("\"ph\":\"M\"").unwrap() < json.find("\"ph\":\"X\"").unwrap());
        // One thread_name per distinct tid in the batch.
        let tids: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.tid).collect();
        assert_eq!(json.matches("\"thread_name\"").count(), tids.len());
    }

    #[test]
    fn chrome_export_of_empty_batch_still_names_the_process() {
        let json = chrome_trace_json(&[]);
        assert!(json.contains("process_name"), "{json}");
        assert!(!json.contains("thread_name"), "{json}");
    }

    #[test]
    fn span_cap_bounds_collector_memory() {
        let spans = with_tracing(|| {
            set_span_cap(STRIPES); // 1 span per stripe
            let before = spans_dropped();
            for _ in 0..64 {
                let _g = crate::span!("t.capped");
            }
            let spans = take_spans();
            set_span_cap(DEFAULT_SPAN_CAP);
            assert!(
                spans_dropped() > before,
                "overwrites must be counted as drops"
            );
            spans
        });
        // All 64 ran on one thread → one stripe → exactly 1 survivor.
        let survivors = spans.iter().filter(|s| s.name == "t.capped").count();
        assert_eq!(
            survivors, 1,
            "stripe must hold at most its share of the cap"
        );
    }

    #[test]
    fn tree_render_indents_children() {
        let spans = with_tracing(|| {
            {
                let _o = crate::span!("t.parent");
                let _i = crate::span!("t.child", step = 1usize);
            }
            take_spans()
        });
        let tree = render_tree(&spans);
        let parent_line = tree.lines().find(|l| l.contains("t.parent")).unwrap();
        let child_line = tree.lines().find(|l| l.contains("t.child")).unwrap();
        assert!(!parent_line.starts_with(' '));
        assert!(child_line.starts_with("  "));
        assert!(child_line.contains("step=1"));
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_ns(871), "871 ns");
        assert_eq!(fmt_ns(14_300), "14.3 µs");
        assert_eq!(fmt_ns(2_080_000), "2.08 ms");
        assert_eq!(fmt_ns(1_450_000_000), "1.45 s");
    }
}
