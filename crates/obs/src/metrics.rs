//! The metrics registry: named counters, gauges, and fixed-bucket
//! log-scale histograms with quantile summaries.
//!
//! Instruments are handed out as `Arc`s by a [`Registry`] (usually the
//! process-global [`global()`]) and updated with relaxed atomics — no
//! lock is taken on the update path. Histograms use [`BUCKETS`]
//! power-of-two buckets (bucket *i* covers `[2^i, 2^(i+1))`
//! nanoseconds/units), so an observation is a `leading_zeros` plus two
//! `fetch_add`s; quantiles are read back as the upper bound of the
//! bucket where the cumulative count crosses the rank, clamped to the
//! exact observed min/max. With ~5 µs p50 query latencies and buckets
//! doubling, the worst-case quantile error is 2× — the right trade for
//! a fixed-size, allocation-free, contention-free instrument.
//!
//! Exports: [`Registry::render_prometheus`] (text exposition format,
//! histograms as cumulative `_bucket{le=...}` series) and
//! [`Registry::render_json`] (a serde-free dump with p50/p95/p99).
//!
//! Metric names may carry Prometheus-style labels inline:
//! `pool_shard_hits{shard="3"}` is one instrument whose name is the
//! whole string; the exporters merge extra labels (`le`) correctly.

use crate::push_json_str;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of log2 histogram buckets; bucket `BUCKETS - 1` absorbs
/// everything at or above 2^39 (~9.1 minutes in nanoseconds).
pub const BUCKETS: usize = 40;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Overwrites the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Index of the log2 bucket covering `v`.
pub(crate) fn bucket_of(v: u64) -> usize {
    (63 - v.max(1).leading_zeros() as usize).min(BUCKETS - 1)
}

/// Inclusive upper bound reported for bucket `i` (`2^(i+1) - 1`).
pub(crate) fn bucket_bound(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

/// A fixed-bucket log-scale histogram. Observations are any u64 unit
/// (the engine feeds nanoseconds and row counts).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// A point-in-time digest of a histogram.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value.
    pub max: u64,
    /// Median estimate (bucket upper bound, clamped to min/max).
    pub p50: u64,
    /// 95th-percentile estimate.
    pub p95: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a wall-time observation in nanoseconds.
    pub fn observe_duration(&self, d: std::time::Duration) {
        self.observe(d.as_nanos() as u64);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Quantile estimate for `q` in `[0, 1]`: the upper bound of the
    /// bucket where the cumulative count reaches `ceil(q * count)`,
    /// clamped to the exact observed extremes.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let lo = self.min.load(Ordering::Relaxed);
        let hi = self.max.load(Ordering::Relaxed);
        let mut cumulative = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cumulative += b.load(Ordering::Relaxed);
            if cumulative >= rank {
                return bucket_bound(i).clamp(lo.min(hi), hi);
            }
        }
        hi
    }

    /// Snapshot of count/sum/extremes and the standard percentiles.
    pub fn summary(&self) -> HistogramSummary {
        let count = self.count();
        HistogramSummary {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }

    /// Per-bucket counts (for exporters).
    fn bucket_counts(&self) -> [u64; BUCKETS] {
        let mut out = [0u64; BUCKETS];
        for (o, b) in out.iter_mut().zip(&self.buckets) {
            *o = b.load(Ordering::Relaxed);
        }
        out
    }
}

#[derive(Default)]
struct Instruments {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
    help: BTreeMap<String, String>,
}

/// A namespace of instruments. Lookup/creation takes a mutex; callers
/// hold the returned `Arc` and update it lock-free.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Instruments>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.inner.lock().expect("registry poisoned");
        inner.counters.entry(name.to_owned()).or_default().clone()
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.inner.lock().expect("registry poisoned");
        inner.gauges.entry(name.to_owned()).or_default().clone()
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut inner = self.inner.lock().expect("registry poisoned");
        inner.histograms.entry(name.to_owned()).or_default().clone()
    }

    /// Drops every instrument (benchmarks isolate runs with this;
    /// outstanding `Arc`s keep updating their orphaned instrument).
    pub fn reset(&self) {
        let mut inner = self.inner.lock().expect("registry poisoned");
        *inner = Instruments::default();
    }

    /// Registers `# HELP` text for the metric family `base` (the name
    /// without any inline label part). Unregistered families fall back
    /// to a generated one-liner so every family still carries HELP.
    pub fn set_help(&self, base: &str, help: &str) {
        let mut inner = self.inner.lock().expect("registry poisoned");
        inner.help.insert(base.to_owned(), help.to_owned());
    }

    /// Prometheus text exposition format. Each metric family gets one
    /// `# HELP` and one `# TYPE` line (labeled series of the same base
    /// name share them); histogram values are emitted as cumulative
    /// `_bucket{le="..."}` series plus `_sum`/`_count`; only non-empty
    /// buckets below the final `+Inf` are listed.
    pub fn render_prometheus(&self) -> String {
        let inner = self.inner.lock().expect("registry poisoned");
        let mut out = String::new();
        let mut seen: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
        let mut header = |out: &mut String, name: &str, kind: &str| {
            let base = base_name(name);
            if seen.insert(base.to_owned()) {
                let help = inner
                    .help
                    .get(base)
                    .map(String::as_str)
                    .unwrap_or("xkeyword metric");
                out.push_str(&format!("# HELP {base} {}\n", escape_help(help)));
                out.push_str(&format!("# TYPE {base} {kind}\n"));
            }
        };
        for (name, c) in &inner.counters {
            header(&mut out, name, "counter");
            out.push_str(&format!("{name} {}\n", c.get()));
        }
        for (name, g) in &inner.gauges {
            header(&mut out, name, "gauge");
            out.push_str(&format!("{name} {}\n", g.get()));
        }
        for (name, h) in &inner.histograms {
            header(&mut out, name, "histogram");
            let counts = h.bucket_counts();
            let mut cumulative = 0u64;
            for (i, n) in counts.iter().enumerate() {
                if *n == 0 {
                    continue;
                }
                cumulative += n;
                out.push_str(&format!(
                    "{} {cumulative}\n",
                    with_label(name, "_bucket", "le", &bucket_bound(i).to_string())
                ));
            }
            out.push_str(&format!(
                "{} {cumulative}\n",
                with_label(name, "_bucket", "le", "+Inf")
            ));
            let s = h.summary();
            out.push_str(&format!("{} {}\n", suffixed(name, "_sum"), s.sum));
            out.push_str(&format!("{} {}\n", suffixed(name, "_count"), s.count));
        }
        out
    }

    /// A serde-free JSON dump: counters and gauges as numbers,
    /// histograms as `{count, sum, min, max, p50, p95, p99}` objects.
    pub fn render_json(&self) -> String {
        let inner = self.inner.lock().expect("registry poisoned");
        let mut out = String::from("{\n  \"counters\": {");
        push_map(&mut out, &inner.counters, |c| c.get().to_string());
        out.push_str("},\n  \"gauges\": {");
        push_map(&mut out, &inner.gauges, |g| g.get().to_string());
        out.push_str("},\n  \"histograms\": {");
        push_map(&mut out, &inner.histograms, |h| {
            let s = h.summary();
            format!(
                "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                s.count, s.sum, s.min, s.max, s.p50, s.p95, s.p99
            )
        });
        out.push_str("}\n}\n");
        out
    }
}

fn push_map<T>(out: &mut String, map: &BTreeMap<String, Arc<T>>, render: impl Fn(&T) -> String) {
    for (i, (name, v)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        push_json_str(out, name);
        out.push_str(": ");
        out.push_str(&render(v));
    }
    if !map.is_empty() {
        out.push_str("\n  ");
    }
}

/// The metric name without any inline `{label="..."}` part.
fn base_name(name: &str) -> &str {
    name.split('{').next().unwrap_or(name)
}

/// Escapes a label value per the Prometheus exposition format:
/// backslash, double quote, and newline must be backslash-escaped.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes `# HELP` text: backslash and newline only (quotes are legal).
fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Builds an instrument name with inline labels, escaping each value:
/// `labeled("io", &[("table", "a\"b")])` → `io{table="a\"b"}` (escaped).
/// Instrument names created this way render correctly in
/// [`Registry::render_prometheus`] even when values carry `\`, `"`, or
/// newlines.
pub fn labeled(base: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return base.to_owned();
    }
    let mut out = String::from(base);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_label_value(v));
        out.push('"');
    }
    out.push('}');
    out
}

/// `name` + `suffix`, keeping any inline labels after the suffix:
/// `pool_hits{shard="3"}` + `_sum` → `pool_hits_sum{shard="3"}`.
fn suffixed(name: &str, suffix: &str) -> String {
    match name.split_once('{') {
        Some((base, labels)) => format!("{base}{suffix}{{{labels}"),
        None => format!("{name}{suffix}"),
    }
}

/// `name` + `suffix` with one more label merged into the label set.
/// The merged value is escaped; pre-existing inline labels are assumed
/// to have been escaped at construction (see [`labeled`]).
fn with_label(name: &str, suffix: &str, key: &str, value: &str) -> String {
    let value = escape_label_value(value);
    match name.split_once('{') {
        Some((base, labels)) => {
            let labels = labels.trim_end_matches('}');
            format!("{base}{suffix}{{{labels},{key}=\"{value}\"}}")
        }
        None => format!("{name}{suffix}{{{key}=\"{value}\"}}"),
    }
}

/// The process-global registry every instrumented crate feeds.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let r = Registry::new();
        r.counter("xkw_queries_total").add(3);
        r.counter("xkw_queries_total").inc();
        r.gauge("xkw_pool_resident").set(17);
        assert_eq!(r.counter("xkw_queries_total").get(), 4);
        assert_eq!(r.gauge("xkw_pool_resident").get(), 17);
    }

    #[test]
    fn bucket_math() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_bound(0), 1);
        assert_eq!(bucket_bound(9), 1023);
    }

    #[test]
    fn histogram_quantiles_bound_the_truth() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 1000);
        assert_eq!(s.sum, 500_500);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
        // The estimate is the bucket's upper bound: never below the true
        // quantile, never more than 2× above it (log2 buckets).
        assert!(s.p50 >= 500 && s.p50 <= 1000, "p50={}", s.p50);
        assert!(s.p95 >= 950 && s.p95 <= 1000, "p95={}", s.p95);
        assert!(s.p99 >= 990 && s.p99 <= 1000, "p99={}", s.p99);
    }

    #[test]
    fn histogram_single_value_is_exact() {
        let h = Histogram::default();
        h.observe(42);
        let s = h.summary();
        assert_eq!((s.min, s.max), (42, 42));
        assert_eq!(s.p50, 42, "clamping to max makes lone values exact");
        assert_eq!(s.p99, 42);
    }

    #[test]
    fn empty_histogram_summary_is_zero() {
        let h = Histogram::default();
        assert_eq!(h.summary(), HistogramSummary::default());
    }

    #[test]
    fn same_name_same_instrument() {
        let r = Registry::new();
        let a = r.histogram("lat");
        let b = r.histogram("lat");
        a.observe(5);
        assert_eq!(b.count(), 1);
    }

    #[test]
    fn prometheus_rendering() {
        let r = Registry::new();
        r.counter("xkw_queries_total").add(2);
        r.gauge("xkw_pool_shard_hits{shard=\"3\"}").set(9);
        let h = r.histogram("xkw_query_latency_ns");
        h.observe(100);
        h.observe(3000);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE xkw_queries_total counter"));
        assert!(text.contains("xkw_queries_total 2"));
        assert!(text.contains("xkw_pool_shard_hits{shard=\"3\"} 9"));
        assert!(text.contains("# TYPE xkw_query_latency_ns histogram"));
        assert!(text.contains("xkw_query_latency_ns_bucket{le=\"127\"} 1"));
        assert!(text.contains("xkw_query_latency_ns_bucket{le=\"4095\"} 2"));
        assert!(text.contains("xkw_query_latency_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("xkw_query_latency_ns_sum 3100"));
        assert!(text.contains("xkw_query_latency_ns_count 2"));
    }

    #[test]
    fn prometheus_families_share_one_help_and_type_line() {
        let r = Registry::new();
        r.set_help("xkw_pool_shard_hits", "per-shard buffer pool hits");
        r.gauge("xkw_pool_shard_hits{shard=\"0\"}").set(1);
        r.gauge("xkw_pool_shard_hits{shard=\"1\"}").set(2);
        let text = r.render_prometheus();
        assert_eq!(
            text.matches("# TYPE xkw_pool_shard_hits gauge").count(),
            1,
            "labeled series of one family must share a single TYPE line:\n{text}"
        );
        assert_eq!(
            text.matches("# HELP xkw_pool_shard_hits per-shard buffer pool hits")
                .count(),
            1,
            "{text}"
        );
        // HELP precedes TYPE precedes the samples, per the exposition format.
        let help = text.find("# HELP xkw_pool_shard_hits").unwrap();
        let ty = text.find("# TYPE xkw_pool_shard_hits").unwrap();
        let sample = text.find("xkw_pool_shard_hits{shard=\"0\"} 1").unwrap();
        assert!(help < ty && ty < sample, "{text}");
    }

    #[test]
    fn every_family_gets_default_help() {
        let r = Registry::new();
        r.counter("xkw_queries_total").inc();
        let text = r.render_prometheus();
        assert!(
            text.contains("# HELP xkw_queries_total xkeyword metric"),
            "{text}"
        );
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label_value(r#"a\b"c"#), r#"a\\b\"c"#);
        assert_eq!(escape_label_value("x\ny"), "x\\ny");
        assert_eq!(
            labeled("io", &[("table", "a\"b"), ("kind", "r\\w")]),
            "io{table=\"a\\\"b\",kind=\"r\\\\w\"}"
        );
        assert_eq!(labeled("io", &[]), "io");

        let r = Registry::new();
        r.counter(&labeled("xkw_evil", &[("path", "c:\\tmp\n\"x\"")]))
            .inc();
        let text = r.render_prometheus();
        assert!(
            text.contains("xkw_evil{path=\"c:\\\\tmp\\n\\\"x\\\"\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn help_text_is_escaped() {
        let r = Registry::new();
        r.set_help("m", "line one\nline two \\ backslash");
        r.counter("m").inc();
        let text = r.render_prometheus();
        assert!(
            text.contains("# HELP m line one\\nline two \\\\ backslash"),
            "{text}"
        );
    }

    #[test]
    fn labeled_histogram_suffixes_merge() {
        assert_eq!(
            with_label("io{table=\"t\"}", "_bucket", "le", "7"),
            "io_bucket{table=\"t\",le=\"7\"}"
        );
        assert_eq!(suffixed("io{table=\"t\"}", "_sum"), "io_sum{table=\"t\"}");
        assert_eq!(suffixed("io", "_count"), "io_count");
    }

    #[test]
    fn json_dump_shape() {
        let r = Registry::new();
        r.counter("c").inc();
        r.histogram("h").observe(7);
        let json = r.render_json();
        assert!(json.contains("\"counters\""));
        assert!(json.contains("\"c\": 1"));
        assert!(json.contains("\"h\": {\"count\":1,\"sum\":7,"));
        // Balanced braces — cheap structural sanity for the serde-free dump.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
    }

    #[test]
    fn reset_clears_instruments() {
        let r = Registry::new();
        r.counter("c").inc();
        r.reset();
        assert_eq!(r.counter("c").get(), 0);
    }

    #[test]
    fn concurrent_observations_all_land() {
        let r = Registry::new();
        let h = r.histogram("mt");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let h = h.clone();
                s.spawn(move || {
                    for v in 0..1000u64 {
                        h.observe(v);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
        assert_eq!(h.summary().max, 999);
    }
}
