//! The always-on flight recorder: a bounded, lock-striped ring of
//! per-query records, a slow-query log with auto-captured EXPLAIN
//! profiles, and windowed serving metrics.
//!
//! Every query the engine finishes — success, degraded, or error —
//! appends one [`QueryRecord`]: keywords, k, postings format, per-stage
//! timings, attributed I/O, pruning counters, a [`DegradationSummary`],
//! and an FNV-1a digest of the result rows. Records live in
//! [`RECORD_STRIPES`] mutex-striped rings of fixed total capacity;
//! once a stripe fills, new records overwrite its oldest, so leaving
//! the recorder on forever costs fixed memory. Unlike the span/metric
//! layer (off by default, [`crate::enabled`]), the recorder defaults
//! **on**: the `recorder_overhead` bench in `xkw-bench` CI-gates its
//! always-on cost under 5% of a fig15a batch.
//!
//! Two mechanisms decide which queries keep expensive evidence:
//!
//! * **Head sampling** — `splitmix64(seed ^ id) % sample_every == 0`
//!   picks a deterministic 1-in-N of query ids at admission. Sampled
//!   queries also keep their full span tree (drained from the trace
//!   collector into the record), bounding trace memory without a
//!   grow-forever `take_spans` on the hot path.
//! * **Forced capture** — queries that exceed the slow threshold,
//!   finish degraded (deadline, skipped/incomplete plans, faults),
//!   observe corruption, or error are always captured, and are flagged
//!   for an EXPLAIN ANALYZE profile. The engine attaches that profile
//!   *lazily* (at slow-log read/export time, never on the serving
//!   path) via [`FlightRecorder::pending_explains`] /
//!   [`FlightRecorder::attach_explain`]; the attached
//!   [`ExplainCapture`] preserves the per-operator I/O decomposition
//!   invariant against its own recorded totals.
//!
//! The recorder also owns the windowed instruments (qps, latency
//! quantiles, pool hit rate, degradation rate over the last N
//! windows, see [`crate::window`]), rotated by wall clock on record
//! push, rendered by [`FlightRecorder::dashboard`] (the CLI `:top`
//! view) and [`FlightRecorder::render_window_prometheus`].

use crate::profile::PlanProfile;
use crate::push_json_str;
use crate::trace::{fmt_ns, SpanRecord};
use crate::window::{WindowedCounter, WindowedHistogram, DEFAULT_WINDOWS};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Stripe count of the record ring; query ids map onto stripes.
pub const RECORD_STRIPES: usize = 8;

/// Default total record capacity across all stripes.
pub const DEFAULT_CAPACITY: usize = 1024;

/// Default head-sampling rate: 1 in 64 queries keeps its span tree.
pub const DEFAULT_SAMPLE_EVERY: u64 = 64;

/// Default sampling seed. Pinned so that query ids 1..=64 are *not*
/// head-sampled (unit-tested below): fresh-engine smoke tests and the
/// chrome-trace pin in `tests/observability.rs` observe an untouched
/// span collector unless a query is forced.
pub const DEFAULT_SAMPLE_SEED: u64 = 0xB0B0_0000;

/// Default slow-query threshold: 50 ms.
pub const DEFAULT_SLOW_THRESHOLD_NS: u64 = 50_000_000;

/// Default window width for the sliding metrics: 1 s.
pub const DEFAULT_WINDOW_NS: u64 = 1_000_000_000;

/// SplitMix64 finalizer — the deterministic hash behind head sampling.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Execution mode as recorded — mirrors `xkw_core::ExecMode`, redefined
/// here because the dependency points the other way (core uses obs).
/// The engine converts both directions so a deferred EXPLAIN capture
/// re-runs under the original mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordedMode {
    /// Nested loops with no partial-result cache.
    Naive,
    /// Partial-result cache of the given capacity.
    Cached {
        /// Cache capacity in entries.
        capacity: usize,
    },
}

impl RecordedMode {
    /// Short label for tables and JSON (`naive` / `cached:8192`).
    pub fn label(&self) -> String {
        match self {
            RecordedMode::Naive => "naive".to_owned(),
            RecordedMode::Cached { capacity } => format!("cached:{capacity}"),
        }
    }
}

/// Flattened degradation evidence carried by a record (the engine fills
/// it from `exec::Degradation`; faults become rendered strings so obs
/// needs no store types).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DegradationSummary {
    /// The query deadline latched before execution finished.
    pub deadline_exceeded: bool,
    /// Plans never started because the deadline had already passed.
    pub plans_skipped: usize,
    /// Plans aborted mid-evaluation (deadline or fault).
    pub plans_incomplete: usize,
    /// Rendered store faults, `"plan 3: checksum mismatch ..."`.
    pub faults: Vec<String>,
    /// Transient-fault retries the store burned during the query.
    pub retries: u64,
    /// Whether any fault was a corruption (checksum/torn-write class).
    pub corrupt: bool,
}

impl DegradationSummary {
    /// Whether anything at all degraded.
    pub fn is_degraded(&self) -> bool {
        self.deadline_exceeded
            || self.plans_skipped > 0
            || self.plans_incomplete > 0
            || !self.faults.is_empty()
    }
}

/// An EXPLAIN ANALYZE capture attached to a record. `io_hits`/
/// `io_misses` are the capture run's own attributed totals; summing
/// per-operator I/O over `profiles` reproduces them exactly (the same
/// decomposition invariant `tests/observability.rs` pins for live
/// EXPLAIN).
#[derive(Debug, Clone, Default)]
pub struct ExplainCapture {
    /// Buffer-pool hits attributed to the capture run.
    pub io_hits: u64,
    /// Buffer-pool misses attributed to the capture run.
    pub io_misses: u64,
    /// Per-plan operator trees.
    pub profiles: Vec<PlanProfile>,
}

impl ExplainCapture {
    /// Per-operator I/O summed over every plan tree.
    pub fn io_total(&self) -> u64 {
        self.profiles.iter().map(PlanProfile::io_total).sum()
    }
}

/// One query's flight-recorder entry.
#[derive(Debug, Clone)]
pub struct QueryRecord {
    /// Recorder-assigned id, monotonically increasing from 1.
    pub id: u64,
    /// The query keywords, in request order.
    pub keywords: Vec<String>,
    /// Proximity bound z.
    pub z: usize,
    /// Top-k limit, `None` for exhaustive queries.
    pub k: Option<usize>,
    /// Which engine entry point ran: `all`, `topk`, `hash`, `explain`.
    pub path: &'static str,
    /// Execution mode, kept for deferred EXPLAIN re-runs.
    pub mode: RecordedMode,
    /// Postings format backing the master index (`raw` / `packed`).
    pub postings: &'static str,
    /// Query deadline, if one was set.
    pub deadline_ns: Option<u64>,
    /// Whether top-k pruning was enabled.
    pub prune: bool,
    /// Whether prepare hit the plan cache.
    pub plan_cache_hit: bool,
    /// Keyword-discovery stage wall time.
    pub discover_ns: u64,
    /// Planning stage wall time.
    pub plan_ns: u64,
    /// Execution stage wall time.
    pub exec_ns: u64,
    /// Presentation (MTTONS) stage wall time.
    pub present_ns: u64,
    /// End-to-end wall time.
    pub total_ns: u64,
    /// Candidate plans considered.
    pub plans: usize,
    /// Plans pruned by the top-k threshold before starting.
    pub plans_pruned: usize,
    /// Plans aborted mid-evaluation by the top-k threshold.
    pub plans_early_stopped: usize,
    /// Result rows returned.
    pub rows: usize,
    /// FNV-1a digest over the result rows (plan, assignment, score) —
    /// lets two runs be compared for identity without storing rows.
    pub result_digest: u64,
    /// Buffer-pool hits attributed to this query.
    pub io_hits: u64,
    /// Buffer-pool misses attributed to this query.
    pub io_misses: u64,
    /// Degradation evidence, `None` when the query ran clean.
    pub degradation: Option<DegradationSummary>,
    /// Rendered error for queries that failed outright.
    pub error: Option<String>,
    /// Exceeded the slow threshold.
    pub slow: bool,
    /// Force-captured (slow, degraded, corrupt, or errored).
    pub forced: bool,
    /// Kept its span tree (head-sampled or forced while tracing).
    pub sampled: bool,
    /// The span tree, populated only when `sampled` and tracing was on.
    pub spans: Vec<SpanRecord>,
    /// Attached EXPLAIN capture (immediately for `explain` queries,
    /// lazily for forced ones).
    pub explain: Option<ExplainCapture>,
    /// Error from a failed deferred capture attempt.
    pub explain_error: Option<String>,
    /// Awaiting a deferred EXPLAIN capture.
    pub needs_explain: bool,
}

impl QueryRecord {
    /// Compact status flags for tables: `S` slow, `D` degraded,
    /// `C` corrupt, `E` error, `.` padding.
    pub fn flags(&self) -> String {
        let degraded = self.degradation.as_ref().is_some_and(|d| d.is_degraded());
        let corrupt = self.degradation.as_ref().is_some_and(|d| d.corrupt);
        [
            if self.slow { 'S' } else { '.' },
            if degraded { 'D' } else { '.' },
            if corrupt { 'C' } else { '.' },
            if self.error.is_some() { 'E' } else { '.' },
        ]
        .iter()
        .collect()
    }

    /// One JSON object (no trailing newline) for JSON-lines export.
    /// Serde-free, shaped for log pipelines: scalar fields, a `stages`
    /// object, optional `degraded` / `explain` objects, and span
    /// *count* rather than the full tree (spans export via the chrome
    /// trace path).
    pub fn to_json_line(&self) -> String {
        let mut o = String::with_capacity(512);
        o.push_str(&format!("{{\"id\":{}", self.id));
        o.push_str(",\"keywords\":[");
        for (i, k) in self.keywords.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            push_json_str(&mut o, k);
        }
        o.push(']');
        o.push_str(&format!(",\"z\":{}", self.z));
        match self.k {
            Some(k) => o.push_str(&format!(",\"k\":{k}")),
            None => o.push_str(",\"k\":null"),
        }
        o.push_str(",\"path\":");
        push_json_str(&mut o, self.path);
        o.push_str(",\"mode\":");
        push_json_str(&mut o, &self.mode.label());
        o.push_str(",\"postings\":");
        push_json_str(&mut o, self.postings);
        match self.deadline_ns {
            Some(d) => o.push_str(&format!(",\"deadline_ns\":{d}")),
            None => o.push_str(",\"deadline_ns\":null"),
        }
        o.push_str(&format!(
            ",\"prune\":{},\"plan_cache_hit\":{}",
            self.prune, self.plan_cache_hit
        ));
        o.push_str(&format!(
            ",\"total_ns\":{},\"stages\":{{\"discover_ns\":{},\"plan_ns\":{},\"exec_ns\":{},\"present_ns\":{}}}",
            self.total_ns, self.discover_ns, self.plan_ns, self.exec_ns, self.present_ns
        ));
        o.push_str(&format!(
            ",\"plans\":{},\"plans_pruned\":{},\"plans_early_stopped\":{}",
            self.plans, self.plans_pruned, self.plans_early_stopped
        ));
        o.push_str(&format!(
            ",\"rows\":{},\"digest\":\"{:016x}\"",
            self.rows, self.result_digest
        ));
        o.push_str(&format!(
            ",\"io_hits\":{},\"io_misses\":{}",
            self.io_hits, self.io_misses
        ));
        o.push_str(&format!(
            ",\"slow\":{},\"forced\":{},\"sampled\":{},\"spans\":{}",
            self.slow,
            self.forced,
            self.sampled,
            self.spans.len()
        ));
        match &self.error {
            Some(e) => {
                o.push_str(",\"error\":");
                push_json_str(&mut o, e);
            }
            None => o.push_str(",\"error\":null"),
        }
        match &self.degradation {
            Some(d) if d.is_degraded() || d.corrupt || d.retries > 0 => {
                o.push_str(&format!(
                    ",\"degraded\":{{\"deadline_exceeded\":{},\"plans_skipped\":{},\"plans_incomplete\":{},\"retries\":{},\"corrupt\":{},\"faults\":[",
                    d.deadline_exceeded, d.plans_skipped, d.plans_incomplete, d.retries, d.corrupt
                ));
                for (i, f) in d.faults.iter().enumerate() {
                    if i > 0 {
                        o.push(',');
                    }
                    push_json_str(&mut o, f);
                }
                o.push_str("]}");
            }
            _ => o.push_str(",\"degraded\":null"),
        }
        match &self.explain {
            Some(x) => {
                o.push_str(&format!(
                    ",\"explain\":{{\"io_hits\":{},\"io_misses\":{},\"profiles\":[",
                    x.io_hits, x.io_misses
                ));
                for (i, p) in x.profiles.iter().enumerate() {
                    if i > 0 {
                        o.push(',');
                    }
                    let (h, m) = p.root.io_breakdown();
                    o.push_str(&format!("{{\"plan\":{},\"name\":", p.plan));
                    push_json_str(&mut o, &p.name);
                    o.push_str(&format!(
                        ",\"score\":{},\"rows\":{},\"io_hits\":{h},\"io_misses\":{m},\"pruned\":{},\"skipped\":{}}}",
                        p.score, p.rows_out, p.pruned, p.skipped
                    ));
                }
                o.push_str("]}");
            }
            None => o.push_str(",\"explain\":null"),
        }
        if let Some(e) = &self.explain_error {
            o.push_str(",\"explain_error\":");
            push_json_str(&mut o, e);
        }
        o.push('}');
        o
    }
}

/// What a deferred EXPLAIN capture needs to re-run a recorded query.
#[derive(Debug, Clone)]
pub struct PendingExplain {
    /// Record id to attach the capture to.
    pub id: u64,
    /// The query keywords.
    pub keywords: Vec<String>,
    /// Proximity bound z.
    pub z: usize,
    /// Top-k limit, `None` for exhaustive.
    pub k: Option<usize>,
    /// Execution mode to re-run under.
    pub mode: RecordedMode,
    /// Original deadline — the capture honors it so a query that
    /// degraded under a deadline cannot stall the capture either.
    pub deadline_ns: Option<u64>,
}

/// Tunables for a [`FlightRecorder`].
#[derive(Debug, Clone)]
pub struct RecorderConfig {
    /// Total records retained across stripes.
    pub capacity: usize,
    /// Head-sample 1 in this many queries (0 disables head sampling).
    pub sample_every: u64,
    /// Seed for the sampling hash.
    pub sample_seed: u64,
    /// Slow-query threshold in nanoseconds.
    pub slow_threshold_ns: u64,
    /// Window width for the sliding metrics, nanoseconds.
    pub window_ns: u64,
    /// Number of windows retained.
    pub windows: usize,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig {
            capacity: DEFAULT_CAPACITY,
            sample_every: DEFAULT_SAMPLE_EVERY,
            sample_seed: DEFAULT_SAMPLE_SEED,
            slow_threshold_ns: DEFAULT_SLOW_THRESHOLD_NS,
            window_ns: DEFAULT_WINDOW_NS,
            windows: DEFAULT_WINDOWS,
        }
    }
}

struct RecordStripe {
    records: Vec<QueryRecord>,
    cursor: usize,
}

struct WindowClock {
    epoch: Option<Instant>,
    ticked: u64,
}

/// The flight recorder. One per engine; see the module docs for the
/// sampling/forcing/window design.
pub struct FlightRecorder {
    enabled: AtomicBool,
    next_id: AtomicU64,
    capacity: usize,
    sample_seed: u64,
    sample_every: AtomicU64,
    slow_threshold_ns: AtomicU64,
    appended: AtomicU64,
    stripes: [Mutex<RecordStripe>; RECORD_STRIPES],
    window_ns: u64,
    windows: usize,
    clock: Mutex<WindowClock>,
    w_queries: WindowedCounter,
    w_slow: WindowedCounter,
    w_degraded: WindowedCounter,
    w_errors: WindowedCounter,
    w_io_hits: WindowedCounter,
    w_io_misses: WindowedCounter,
    w_latency: WindowedHistogram,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(RecorderConfig::default())
    }
}

impl FlightRecorder {
    /// A recorder with the given tunables, enabled from the start.
    pub fn new(config: RecorderConfig) -> Self {
        let windows = config.windows.max(1);
        FlightRecorder {
            enabled: AtomicBool::new(true),
            next_id: AtomicU64::new(1),
            capacity: config.capacity.max(RECORD_STRIPES),
            sample_seed: config.sample_seed,
            sample_every: AtomicU64::new(config.sample_every),
            slow_threshold_ns: AtomicU64::new(config.slow_threshold_ns.max(1)),
            appended: AtomicU64::new(0),
            stripes: [const {
                Mutex::new(RecordStripe {
                    records: Vec::new(),
                    cursor: 0,
                })
            }; RECORD_STRIPES],
            window_ns: config.window_ns.max(1),
            windows,
            clock: Mutex::new(WindowClock {
                epoch: None,
                ticked: 0,
            }),
            w_queries: WindowedCounter::new(windows),
            w_slow: WindowedCounter::new(windows),
            w_degraded: WindowedCounter::new(windows),
            w_errors: WindowedCounter::new(windows),
            w_io_hits: WindowedCounter::new(windows),
            w_io_misses: WindowedCounter::new(windows),
            w_latency: WindowedHistogram::new(windows),
        }
    }

    /// Whether recording is on (the default). The off switch exists for
    /// A/B runs — the `recorder_overhead` bench and the byte-identity
    /// proptests — not for production use.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Current slow-query threshold in nanoseconds.
    pub fn slow_threshold_ns(&self) -> u64 {
        self.slow_threshold_ns.load(Ordering::Relaxed)
    }

    /// Sets the slow-query threshold (clamped to ≥ 1 ns).
    pub fn set_slow_threshold_ns(&self, ns: u64) {
        self.slow_threshold_ns.store(ns.max(1), Ordering::Relaxed);
    }

    /// Sets the head-sampling rate (1 in `every`; 0 disables).
    pub fn set_sample_every(&self, every: u64) {
        self.sample_every.store(every, Ordering::Relaxed);
    }

    /// Total records retained at capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records appended over the recorder's lifetime (≥ `len`).
    pub fn appended(&self) -> u64 {
        self.appended.load(Ordering::Relaxed)
    }

    /// Records currently retained.
    pub fn len(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.lock().expect("record stripe poisoned").records.len())
            .sum()
    }

    /// Whether the ring holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Allocates the next query id.
    pub fn next_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Deterministic head-sampling decision for `id`.
    pub fn should_sample(&self, id: u64) -> bool {
        let every = self.sample_every.load(Ordering::Relaxed);
        every != 0 && splitmix64(self.sample_seed ^ id).is_multiple_of(every)
    }

    /// Appends a record (ring-overwriting the stripe's oldest at
    /// capacity) and feeds the windowed instruments. No-op while
    /// disabled.
    pub fn push(&self, record: QueryRecord) {
        if !self.enabled() {
            return;
        }
        self.maybe_tick();
        self.w_queries.inc();
        self.w_latency.observe(record.total_ns);
        self.w_io_hits.add(record.io_hits);
        self.w_io_misses.add(record.io_misses);
        if record.slow {
            self.w_slow.inc();
        }
        if record.degradation.as_ref().is_some_and(|d| d.is_degraded()) {
            self.w_degraded.inc();
        }
        if record.error.is_some() {
            self.w_errors.inc();
        }
        let per_stripe = (self.capacity / RECORD_STRIPES).max(1);
        let mut stripe = self.stripes[(record.id as usize) % RECORD_STRIPES]
            .lock()
            .expect("record stripe poisoned");
        if stripe.records.len() < per_stripe {
            stripe.records.push(record);
        } else {
            let at = stripe.cursor % per_stripe;
            stripe.records[at] = record;
            stripe.cursor = stripe.cursor.wrapping_add(1);
        }
        drop(stripe);
        self.appended.fetch_add(1, Ordering::Relaxed);
    }

    /// Every retained record, ordered by query id.
    pub fn records(&self) -> Vec<QueryRecord> {
        let mut all: Vec<QueryRecord> = Vec::new();
        for stripe in &self.stripes {
            all.extend(
                stripe
                    .lock()
                    .expect("record stripe poisoned")
                    .records
                    .iter()
                    .cloned(),
            );
        }
        all.sort_by_key(|r| r.id);
        all
    }

    /// The last `n` force-captured records (slow/degraded/corrupt/
    /// errored), oldest first.
    pub fn slow_records(&self, n: usize) -> Vec<QueryRecord> {
        let mut forced: Vec<QueryRecord> =
            self.records().into_iter().filter(|r| r.forced).collect();
        if forced.len() > n {
            forced.drain(..forced.len() - n);
        }
        forced
    }

    /// Records still awaiting a deferred EXPLAIN capture.
    pub fn pending_explains(&self) -> Vec<PendingExplain> {
        let mut out: Vec<PendingExplain> = Vec::new();
        for stripe in &self.stripes {
            let stripe = stripe.lock().expect("record stripe poisoned");
            for r in &stripe.records {
                if r.needs_explain && r.explain.is_none() {
                    out.push(PendingExplain {
                        id: r.id,
                        keywords: r.keywords.clone(),
                        z: r.z,
                        k: r.k,
                        mode: r.mode,
                        deadline_ns: r.deadline_ns,
                    });
                }
            }
        }
        out.sort_by_key(|p| p.id);
        out
    }

    /// Attaches an EXPLAIN capture to record `id`. Returns `false` if
    /// the record was already overwritten.
    pub fn attach_explain(&self, id: u64, capture: ExplainCapture) -> bool {
        self.with_record(id, |r| {
            r.explain = Some(capture);
            r.needs_explain = false;
        })
    }

    /// Marks record `id`'s deferred capture as failed (it will not be
    /// retried). Returns `false` if the record was already overwritten.
    pub fn explain_failed(&self, id: u64, error: String) -> bool {
        self.with_record(id, |r| {
            r.explain_error = Some(error);
            r.needs_explain = false;
        })
    }

    fn with_record(&self, id: u64, f: impl FnOnce(&mut QueryRecord)) -> bool {
        let mut stripe = self.stripes[(id as usize) % RECORD_STRIPES]
            .lock()
            .expect("record stripe poisoned");
        match stripe.records.iter_mut().find(|r| r.id == id) {
            Some(r) => {
                f(r);
                true
            }
            None => false,
        }
    }

    /// Every retained record as JSON-lines (one object per line).
    pub fn export_jsonl(&self) -> String {
        let mut out = String::new();
        for r in self.records() {
            out.push_str(&r.to_json_line());
            out.push('\n');
        }
        out
    }

    /// Renders the last `n` slow-log entries as an aligned text table.
    pub fn render_slow_table(&self, n: usize) -> String {
        let records = self.slow_records(n);
        if records.is_empty() {
            return "slow log: empty\n".to_owned();
        }
        let mut out = String::new();
        out.push_str(&format!(
            "{:>6}  {:<28} {:>4}  {:>10}  {:>5}  {:>9}  {:^5}  {}\n",
            "id", "keywords", "k", "total", "rows", "io", "flags", "detail"
        ));
        for r in &records {
            let mut kw = r.keywords.join(" ");
            if kw.len() > 28 {
                kw.truncate(27);
                kw.push('…');
            }
            let detail = if let Some(e) = &r.error {
                format!("error: {e}")
            } else if let Some(d) = r.degradation.as_ref().filter(|d| d.is_degraded()) {
                format!(
                    "degraded: skipped={} incomplete={} faults={} retries={}",
                    d.plans_skipped,
                    d.plans_incomplete,
                    d.faults.len(),
                    d.retries
                )
            } else {
                String::new()
            };
            out.push_str(&format!(
                "{:>6}  {:<28} {:>4}  {:>10}  {:>5}  {:>9}  {:^5}  {}\n",
                r.id,
                kw,
                r.k.map(|k| k.to_string()).unwrap_or_else(|| "-".into()),
                fmt_ns(r.total_ns),
                r.rows,
                format!("{}h+{}m", r.io_hits, r.io_misses),
                r.flags(),
                detail,
            ));
            if let Some(x) = &r.explain {
                for p in &x.profiles {
                    for line in p.render().lines() {
                        out.push_str(&format!("        | {line}\n"));
                    }
                }
            }
        }
        out
    }

    /// Manually rotates every windowed instrument by one window.
    pub fn tick(&self) {
        for c in [
            &self.w_queries,
            &self.w_slow,
            &self.w_degraded,
            &self.w_errors,
            &self.w_io_hits,
            &self.w_io_misses,
        ] {
            c.tick();
        }
        self.w_latency.tick();
    }

    /// Rotates windows to match wall time: if more than `window_ns` has
    /// passed since the last rotation, ticks once per elapsed window
    /// (capped at a full ring, which is equivalent to clearing it).
    /// One `Instant::now` per call; the engine calls this once per
    /// query push.
    pub fn maybe_tick(&self) {
        let mut clock = self.clock.lock().expect("window clock poisoned");
        let epoch = *clock.epoch.get_or_insert_with(Instant::now);
        let due = epoch.elapsed().as_nanos() as u64 / self.window_ns;
        let behind = due.saturating_sub(clock.ticked);
        if behind == 0 {
            return;
        }
        for _ in 0..behind.min(self.windows as u64) {
            self.tick();
        }
        clock.ticked = due;
    }

    /// Point-in-time windowed stats for dashboards and exporters.
    pub fn window_stats(&self) -> WindowStats {
        let n = self.windows;
        let queries = self.w_queries.total_last(n);
        let hits = self.w_io_hits.total_last(n);
        let misses = self.w_io_misses.total_last(n);
        WindowStats {
            windows: n,
            window_ns: self.window_ns,
            queries,
            slow: self.w_slow.total_last(n),
            degraded: self.w_degraded.total_last(n),
            errors: self.w_errors.total_last(n),
            io_hits: hits,
            io_misses: misses,
            latency: self.w_latency.summary_last(n),
            qps_per_window: self.w_queries.per_window(n),
        }
    }

    /// The `:top` live dashboard: qps, latency quantiles, pool hit
    /// rate, degradation rate over the retained windows.
    pub fn dashboard(&self) -> String {
        let s = self.window_stats();
        let span_s = (s.windows as f64 * s.window_ns as f64) / 1e9;
        let qps = s.queries as f64 / span_s.max(1e-9);
        let hit_rate = if s.io_hits + s.io_misses > 0 {
            100.0 * s.io_hits as f64 / (s.io_hits + s.io_misses) as f64
        } else {
            0.0
        };
        let pct = |num: u64| {
            if s.queries > 0 {
                100.0 * num as f64 / s.queries as f64
            } else {
                0.0
            }
        };
        let mut out = String::new();
        out.push_str(&format!(
            "last {} windows × {} ({} queries)\n",
            s.windows,
            fmt_ns(s.window_ns),
            s.queries
        ));
        out.push_str(&format!("  qps        {qps:.1}\n"));
        out.push_str(&format!(
            "  latency    p50={} p95={} p99={} max={}\n",
            fmt_ns(s.latency.p50),
            fmt_ns(s.latency.p95),
            fmt_ns(s.latency.p99),
            fmt_ns(s.latency.max)
        ));
        out.push_str(&format!(
            "  pool       {hit_rate:.1}% hit ({}h+{}m)\n",
            s.io_hits, s.io_misses
        ));
        out.push_str(&format!(
            "  degraded   {:.1}% ({})   slow {:.1}% ({})   errors {:.1}% ({})\n",
            pct(s.degraded),
            s.degraded,
            pct(s.slow),
            s.slow,
            pct(s.errors),
            s.errors
        ));
        out.push_str("  queries/window ");
        for q in &s.qps_per_window {
            out.push_str(&format!("{q} "));
        }
        out.push('\n');
        out
    }

    /// Prometheus text for the windowed instruments (`xkw_window_*`
    /// gauges — point-in-time views over the last N windows, distinct
    /// from the cumulative registry families).
    pub fn render_window_prometheus(&self) -> String {
        let s = self.window_stats();
        let span_s = (s.windows as f64 * s.window_ns as f64) / 1e9;
        let qps = s.queries as f64 / span_s.max(1e-9);
        let mut out = String::new();
        let gauge = |out: &mut String, name: &str, help: &str, value: String| {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} gauge\n"));
            out.push_str(&format!("{name} {value}\n"));
        };
        gauge(
            &mut out,
            "xkw_window_queries",
            "queries over the retained windows",
            s.queries.to_string(),
        );
        gauge(
            &mut out,
            "xkw_window_qps",
            "mean query rate over the retained windows",
            format!("{qps:.3}"),
        );
        for (q, v) in [
            ("p50", s.latency.p50),
            ("p95", s.latency.p95),
            ("p99", s.latency.p99),
        ] {
            out.push_str(&format!(
                "# HELP xkw_window_latency_ns_{q} {q} query latency over the retained windows\n# TYPE xkw_window_latency_ns_{q} gauge\nxkw_window_latency_ns_{q} {v}\n"
            ));
        }
        let hit_ratio = if s.io_hits + s.io_misses > 0 {
            s.io_hits as f64 / (s.io_hits + s.io_misses) as f64
        } else {
            0.0
        };
        gauge(
            &mut out,
            "xkw_window_pool_hit_ratio",
            "buffer-pool hit ratio over the retained windows",
            format!("{hit_ratio:.4}"),
        );
        gauge(
            &mut out,
            "xkw_window_degraded",
            "degraded queries over the retained windows",
            s.degraded.to_string(),
        );
        gauge(
            &mut out,
            "xkw_window_slow",
            "slow queries over the retained windows",
            s.slow.to_string(),
        );
        gauge(
            &mut out,
            "xkw_window_errors",
            "failed queries over the retained windows",
            s.errors.to_string(),
        );
        out
    }

    /// Drops every record (windows and the id counter keep running).
    pub fn clear(&self) {
        for stripe in &self.stripes {
            let mut stripe = stripe.lock().expect("record stripe poisoned");
            stripe.records.clear();
            stripe.cursor = 0;
        }
    }
}

/// A point-in-time digest of the windowed instruments.
#[derive(Debug, Clone)]
pub struct WindowStats {
    /// Windows merged.
    pub windows: usize,
    /// Window width, nanoseconds.
    pub window_ns: u64,
    /// Queries over the merged windows.
    pub queries: u64,
    /// Slow queries over the merged windows.
    pub slow: u64,
    /// Degraded queries over the merged windows.
    pub degraded: u64,
    /// Failed queries over the merged windows.
    pub errors: u64,
    /// Buffer-pool hits over the merged windows.
    pub io_hits: u64,
    /// Buffer-pool misses over the merged windows.
    pub io_misses: u64,
    /// Latency digest over the merged windows.
    pub latency: crate::metrics::HistogramSummary,
    /// Per-window query counts, newest first.
    pub qps_per_window: Vec<u64>,
}

/// A rare-event log the store feeds: quarantines, checksum failures,
/// fault installs. Process-global (the store has no engine handle),
/// bounded, always on.
pub struct EventLog {
    entries: Mutex<std::collections::VecDeque<StoreEvent>>,
    capacity: usize,
    appended: AtomicU64,
}

/// One store-side event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreEvent {
    /// Event class (`quarantine`, `checksum_failure`, ...).
    pub kind: &'static str,
    /// Rendered detail.
    pub detail: String,
}

impl EventLog {
    fn new(capacity: usize) -> Self {
        EventLog {
            entries: Mutex::new(std::collections::VecDeque::new()),
            capacity,
            appended: AtomicU64::new(0),
        }
    }

    /// Appends an event, evicting the oldest at capacity.
    pub fn push(&self, kind: &'static str, detail: String) {
        let mut entries = self.entries.lock().expect("event log poisoned");
        if entries.len() == self.capacity {
            entries.pop_front();
        }
        entries.push_back(StoreEvent { kind, detail });
        self.appended.fetch_add(1, Ordering::Relaxed);
    }

    /// The most recent `n` events, oldest first.
    pub fn recent(&self, n: usize) -> Vec<StoreEvent> {
        let entries = self.entries.lock().expect("event log poisoned");
        entries.iter().rev().take(n).rev().cloned().collect()
    }

    /// Events appended over the process lifetime.
    pub fn appended(&self) -> u64 {
        self.appended.load(Ordering::Relaxed)
    }
}

/// The process-global store-event log.
pub fn events() -> &'static EventLog {
    static EVENTS: std::sync::OnceLock<EventLog> = std::sync::OnceLock::new();
    EVENTS.get_or_init(|| EventLog::new(256))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64) -> QueryRecord {
        QueryRecord {
            id,
            keywords: vec!["john".into(), "vcr".into()],
            z: 8,
            k: None,
            path: "all",
            mode: RecordedMode::Cached { capacity: 8192 },
            postings: "raw",
            deadline_ns: None,
            prune: false,
            plan_cache_hit: true,
            discover_ns: 100,
            plan_ns: 200,
            exec_ns: 300,
            present_ns: 50,
            total_ns: 650,
            plans: 3,
            plans_pruned: 0,
            plans_early_stopped: 0,
            rows: 2,
            result_digest: 0xDEAD_BEEF,
            io_hits: 5,
            io_misses: 1,
            degradation: None,
            error: None,
            slow: false,
            forced: false,
            sampled: false,
            spans: Vec::new(),
            explain: None,
            explain_error: None,
            needs_explain: false,
        }
    }

    #[test]
    fn default_seed_never_samples_the_first_64_ids() {
        let r = FlightRecorder::default();
        for id in 1..=64 {
            assert!(
                !r.should_sample(id),
                "id {id} must not be head-sampled under the pinned default seed"
            );
        }
        // Sampling is not vacuous: some id in the first few thousand fires.
        assert!(
            (1..=4096).any(|id| r.should_sample(id)),
            "head sampling must fire eventually"
        );
    }

    #[test]
    fn sampling_is_deterministic_and_rate_controlled() {
        let r = FlightRecorder::default();
        let picks: Vec<bool> = (1..=10_000).map(|id| r.should_sample(id)).collect();
        assert_eq!(
            picks,
            (1..=10_000)
                .map(|id| r.should_sample(id))
                .collect::<Vec<_>>()
        );
        let hits = picks.iter().filter(|&&p| p).count();
        // 1-in-64 over 10k ids: expect ~156, allow a wide band.
        assert!((60..=350).contains(&hits), "got {hits} samples");
        r.set_sample_every(0);
        assert!(!r.should_sample(79), "every=0 disables sampling");
        r.set_sample_every(1);
        assert!(
            (1..=64).all(|id| r.should_sample(id)),
            "every=1 samples all"
        );
    }

    #[test]
    fn ring_capacity_is_never_exceeded() {
        let r = FlightRecorder::new(RecorderConfig {
            capacity: 32,
            ..RecorderConfig::default()
        });
        for id in 1..=500 {
            r.push(record(id));
            assert!(
                r.len() <= r.capacity(),
                "len {} > cap {}",
                r.len(),
                r.capacity()
            );
        }
        assert_eq!(r.appended(), 500);
        assert_eq!(r.len(), 32);
        // Survivors are the newest per stripe, still sorted by id.
        let ids: Vec<u64> = r.records().iter().map(|x| x.id).collect();
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
        assert!(
            ids.iter().all(|&id| id > 500 - 64),
            "old ids evicted: {ids:?}"
        );
    }

    #[test]
    fn disabled_recorder_drops_pushes() {
        let r = FlightRecorder::default();
        r.set_enabled(false);
        r.push(record(1));
        assert!(r.is_empty());
        assert_eq!(r.appended(), 0);
        r.set_enabled(true);
        r.push(record(2));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn slow_records_filters_forced_and_caps() {
        let r = FlightRecorder::default();
        for id in 1..=10 {
            let mut rec = record(id);
            rec.forced = id % 2 == 0;
            rec.slow = rec.forced;
            r.push(rec);
        }
        let slow = r.slow_records(3);
        assert_eq!(
            slow.iter().map(|x| x.id).collect::<Vec<_>>(),
            vec![6, 8, 10]
        );
    }

    #[test]
    fn pending_explains_round_trip() {
        let r = FlightRecorder::default();
        let mut rec = record(7);
        rec.forced = true;
        rec.needs_explain = true;
        rec.deadline_ns = Some(250_000_000);
        r.push(rec);
        let pending = r.pending_explains();
        assert_eq!(pending.len(), 1);
        assert_eq!(pending[0].id, 7);
        assert_eq!(pending[0].deadline_ns, Some(250_000_000));
        assert!(r.attach_explain(
            7,
            ExplainCapture {
                io_hits: 3,
                io_misses: 1,
                profiles: Vec::new(),
            }
        ));
        assert!(r.pending_explains().is_empty());
        let rec = &r.records()[0];
        assert!(!rec.needs_explain);
        assert_eq!(rec.explain.as_ref().unwrap().io_hits, 3);
        // Attaching to an evicted/unknown id reports failure.
        assert!(!r.attach_explain(999, ExplainCapture::default()));
    }

    #[test]
    fn explain_failure_clears_pending() {
        let r = FlightRecorder::default();
        let mut rec = record(3);
        rec.needs_explain = true;
        r.push(rec);
        assert!(r.explain_failed(3, "deadline".into()));
        assert!(r.pending_explains().is_empty());
        assert_eq!(r.records()[0].explain_error.as_deref(), Some("deadline"));
    }

    #[test]
    fn jsonl_export_shape() {
        let r = FlightRecorder::default();
        let mut rec = record(1);
        rec.degradation = Some(DegradationSummary {
            deadline_exceeded: true,
            plans_skipped: 2,
            plans_incomplete: 1,
            faults: vec!["plan 0: page 7 \"torn\"".into()],
            retries: 4,
            corrupt: false,
        });
        rec.slow = true;
        rec.forced = true;
        r.push(rec);
        let jsonl = r.export_jsonl();
        let line = jsonl.lines().next().unwrap();
        assert!(line.starts_with("{\"id\":1,"), "{line}");
        assert!(line.contains("\"keywords\":[\"john\",\"vcr\"]"), "{line}");
        assert!(line.contains("\"mode\":\"cached:8192\""), "{line}");
        assert!(line.contains("\"deadline_exceeded\":true"), "{line}");
        assert!(line.contains("\"plans_skipped\":2"), "{line}");
        assert!(line.contains("\"retries\":4"), "{line}");
        assert!(
            line.contains("\\\"torn\\\""),
            "fault strings JSON-escape: {line}"
        );
        assert!(line.contains("\"digest\":\"00000000deadbeef\""), "{line}");
        // Structural sanity: one line per record, balanced braces.
        assert_eq!(jsonl.lines().count(), 1);
        assert_eq!(line.matches('{').count(), line.matches('}').count());
    }

    #[test]
    fn windows_feed_dashboard_and_prometheus() {
        let r = FlightRecorder::default();
        let mut slow = record(1);
        slow.slow = true;
        slow.forced = true;
        slow.total_ns = 80_000_000;
        r.push(slow);
        r.push(record(2));
        let s = r.window_stats();
        assert_eq!(s.queries, 2);
        assert_eq!(s.slow, 1);
        assert_eq!(s.io_hits, 10);
        assert_eq!(s.latency.count, 2);
        let dash = r.dashboard();
        assert!(dash.contains("qps"), "{dash}");
        assert!(dash.contains("p99="), "{dash}");
        assert!(dash.contains("pool"), "{dash}");
        let prom = r.render_window_prometheus();
        assert!(prom.contains("# TYPE xkw_window_qps gauge"), "{prom}");
        assert!(prom.contains("xkw_window_queries 2"), "{prom}");
        assert!(prom.contains("xkw_window_slow 1"), "{prom}");
        assert!(prom.contains("xkw_window_latency_ns_p99"), "{prom}");
        // A full rotation forgets everything.
        for _ in 0..DEFAULT_WINDOWS {
            r.tick();
        }
        assert_eq!(r.window_stats().queries, 0);
    }

    #[test]
    fn slow_table_renders_rows_and_attached_profiles() {
        let r = FlightRecorder::default();
        assert_eq!(r.render_slow_table(5), "slow log: empty\n");
        let mut rec = record(42);
        rec.slow = true;
        rec.forced = true;
        rec.k = Some(3);
        rec.explain = Some(ExplainCapture {
            io_hits: 2,
            io_misses: 0,
            profiles: vec![PlanProfile {
                plan: 0,
                name: "AUTHOR{k0}-PA-PAPER{k1}".into(),
                score: 3,
                ..PlanProfile::default()
            }],
        });
        r.push(rec);
        let table = r.render_slow_table(5);
        assert!(table.contains("42"), "{table}");
        assert!(table.contains("john vcr"), "{table}");
        assert!(table.contains("S..."), "{table}");
        assert!(table.contains("plan 0: AUTHOR{k0}-PA-PAPER{k1}"), "{table}");
    }

    #[test]
    fn event_log_is_bounded() {
        let log = EventLog::new(4);
        for i in 0..10 {
            log.push("quarantine", format!("page {i}"));
        }
        assert_eq!(log.appended(), 10);
        let recent = log.recent(10);
        assert_eq!(recent.len(), 4);
        assert_eq!(recent[0].detail, "page 6");
        assert_eq!(recent[3].detail, "page 9");
        assert_eq!(log.recent(2).len(), 2);
    }

    #[test]
    fn flags_string() {
        let mut rec = record(1);
        assert_eq!(rec.flags(), "....");
        rec.slow = true;
        rec.error = Some("boom".into());
        rec.degradation = Some(DegradationSummary {
            deadline_exceeded: true,
            corrupt: true,
            ..DegradationSummary::default()
        });
        assert_eq!(rec.flags(), "SDCE");
    }
}
