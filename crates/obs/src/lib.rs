//! Observability for the xkeyword workspace: structured tracing,
//! metrics, and EXPLAIN ANALYZE plan profiles.
//!
//! Three pillars (see DESIGN.md §observability):
//!
//! * [`trace`] — a lightweight span API. `span!("exec.join", cn = 3)`
//!   opens a span with enter/exit timestamps, named fields, and a parent
//!   link to the innermost open span on the same thread; finished spans
//!   land in a lock-striped global collector, exportable as Chrome
//!   `trace_event` JSON ([`trace::chrome_trace_json`]) or a rendered
//!   text tree ([`trace::render_tree`]).
//! * [`metrics`] — named counters, gauges, and fixed-bucket log-scale
//!   histograms with p50/p95/p99 summaries, behind a global
//!   [`Registry`], exportable in Prometheus text format or as a
//!   serde-free JSON dump.
//! * [`profile`] — the per-operator tree (`rows in/out`, probe counts,
//!   attributed buffer-pool I/O) an EXPLAIN ANALYZE run reports.
//! * [`recorder`] — the always-on flight recorder: a bounded ring of
//!   per-query records with deterministic head sampling, a slow-query
//!   log with lazily attached EXPLAIN captures, and the [`window`]ed
//!   qps/latency/degradation instruments behind the `:top` dashboard.
//!
//! The span/metric layer is gated on one global [`AtomicBool`]: when
//! disabled (the default), `span!` compiles down to a relaxed atomic
//! load and a branch — field values are never even constructed — and
//! instrumented callers skip their metric pushes. The `obs_overhead`
//! bench in `xkw-bench` asserts the disabled-mode cost stays under the
//! 2% overhead budget on the fig15a workload. The flight recorder is
//! the opposite: on by default, with the `recorder_overhead` bench
//! gating its always-on cost under 5%.

use std::sync::atomic::{AtomicBool, Ordering};

pub mod metrics;
pub mod profile;
pub mod recorder;
pub mod trace;
pub mod window;

pub use metrics::{global, Registry};
pub use profile::{OpProfile, PlanProfile};
pub use recorder::{
    DegradationSummary, ExplainCapture, FlightRecorder, PendingExplain, QueryRecord, RecordedMode,
    RecorderConfig,
};
pub use trace::{SpanGuard, SpanRecord};
pub use window::{WindowedCounter, WindowedHistogram};

/// The master switch. Off by default; nothing is collected while off.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether observability collection is on. This is the only cost
/// instrumented hot paths pay when tracing is off: one relaxed load.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns span/metric collection on or off globally.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Appends `s` to `out` as a JSON string literal (with quotes), escaping
/// per RFC 8259. Shared by the trace and metrics exporters so the crate
/// needs no serde.
pub(crate) fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serializes tests that touch the global flag or span collector.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toggle_round_trips() {
        let _g = crate::test_lock();
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
    }

    #[test]
    fn json_escaping() {
        let mut s = String::new();
        push_json_str(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }
}
