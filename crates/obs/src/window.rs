//! Sliding-window metrics: counter and histogram wrappers that report
//! over the *last N windows* instead of cumulative-since-start.
//!
//! The cumulative instruments in [`crate::metrics`] answer "how much
//! ever"; a serving fleet asks "how much in the last minute". Both
//! wrappers here keep a ring of epoch buckets: observations land in the
//! current bucket, and an explicit [`WindowedCounter::tick`] /
//! [`WindowedHistogram::tick`] rotates the ring — the oldest bucket is
//! zeroed and becomes current. Nothing in this module reads a clock;
//! the owner (the flight recorder, a test, a dashboard loop) decides
//! what a window *is* by deciding when to tick. Per-window rates and
//! merged p50/p95/p99 then come straight out of the ring.
//!
//! Updates are relaxed atomics, same as the cumulative instruments; a
//! tick that races an observation misplaces it by at most one window,
//! which is exactly the precision a windowed metric promises anyway.

use crate::metrics::{bucket_bound, bucket_of, HistogramSummary, BUCKETS};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Default ring depth: the last 8 windows are retained.
pub const DEFAULT_WINDOWS: usize = 8;

/// A counter over a ring of epoch buckets.
#[derive(Debug)]
pub struct WindowedCounter {
    slots: Vec<AtomicU64>,
    cursor: AtomicUsize,
    ticks: AtomicU64,
}

impl WindowedCounter {
    /// A counter retaining `windows` epoch buckets (at least 1).
    pub fn new(windows: usize) -> Self {
        let n = windows.max(1);
        WindowedCounter {
            slots: (0..n).map(|_| AtomicU64::new(0)).collect(),
            cursor: AtomicUsize::new(0),
            ticks: AtomicU64::new(0),
        }
    }

    /// Ring depth.
    pub fn windows(&self) -> usize {
        self.slots.len()
    }

    /// Adds `n` to the current window.
    pub fn add(&self, n: u64) {
        let c = self.cursor.load(Ordering::Relaxed);
        self.slots[c].fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one to the current window.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Rotates the ring: the oldest bucket is zeroed and becomes the
    /// current window.
    pub fn tick(&self) {
        let next = (self.cursor.load(Ordering::Relaxed) + 1) % self.slots.len();
        self.slots[next].store(0, Ordering::Relaxed);
        self.cursor.store(next, Ordering::Relaxed);
        self.ticks.fetch_add(1, Ordering::Relaxed);
    }

    /// Ticks performed so far (windows completed).
    pub fn ticks(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }

    /// Per-window counts, newest (current) first, up to `n` windows.
    pub fn per_window(&self, n: usize) -> Vec<u64> {
        let len = self.slots.len();
        let c = self.cursor.load(Ordering::Relaxed);
        (0..n.min(len))
            .map(|i| self.slots[(c + len - i) % len].load(Ordering::Relaxed))
            .collect()
    }

    /// Sum over the `n` most recent windows (current included).
    pub fn total_last(&self, n: usize) -> u64 {
        self.per_window(n).iter().sum()
    }
}

/// A log2-bucket histogram over a ring of epoch buckets. Bucket math is
/// shared with [`crate::metrics::Histogram`]; quantiles read back merged
/// over the last N windows.
#[derive(Debug)]
pub struct WindowedHistogram {
    slots: Vec<Slot>,
    cursor: AtomicUsize,
}

#[derive(Debug)]
struct Slot {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Slot {
    fn new() -> Self {
        Slot {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

impl WindowedHistogram {
    /// A histogram retaining `windows` epoch buckets (at least 1).
    pub fn new(windows: usize) -> Self {
        WindowedHistogram {
            slots: (0..windows.max(1)).map(|_| Slot::new()).collect(),
            cursor: AtomicUsize::new(0),
        }
    }

    /// Ring depth.
    pub fn windows(&self) -> usize {
        self.slots.len()
    }

    /// Records one observation into the current window.
    pub fn observe(&self, v: u64) {
        let s = &self.slots[self.cursor.load(Ordering::Relaxed)];
        s.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        s.count.fetch_add(1, Ordering::Relaxed);
        s.sum.fetch_add(v, Ordering::Relaxed);
        s.min.fetch_min(v, Ordering::Relaxed);
        s.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Rotates the ring: the oldest bucket is zeroed and becomes the
    /// current window.
    pub fn tick(&self) {
        let next = (self.cursor.load(Ordering::Relaxed) + 1) % self.slots.len();
        self.slots[next].reset();
        self.cursor.store(next, Ordering::Relaxed);
    }

    /// Count/sum/extremes and p50/p95/p99 merged over the `n` most
    /// recent windows (current included).
    pub fn summary_last(&self, n: usize) -> HistogramSummary {
        let len = self.slots.len();
        let c = self.cursor.load(Ordering::Relaxed);
        let mut buckets = [0u64; BUCKETS];
        let (mut count, mut sum) = (0u64, 0u64);
        let (mut min, mut max) = (u64::MAX, 0u64);
        for i in 0..n.min(len) {
            let s = &self.slots[(c + len - i) % len];
            for (m, b) in buckets.iter_mut().zip(&s.buckets) {
                *m += b.load(Ordering::Relaxed);
            }
            count += s.count.load(Ordering::Relaxed);
            sum += s.sum.load(Ordering::Relaxed);
            min = min.min(s.min.load(Ordering::Relaxed));
            max = max.max(s.max.load(Ordering::Relaxed));
        }
        if count == 0 {
            return HistogramSummary::default();
        }
        let quantile = |q: f64| -> u64 {
            let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut cumulative = 0u64;
            for (i, b) in buckets.iter().enumerate() {
                cumulative += b;
                if cumulative >= rank {
                    return bucket_bound(i).clamp(min.min(max), max);
                }
            }
            max
        };
        HistogramSummary {
            count,
            sum,
            min,
            max,
            p50: quantile(0.50),
            p95: quantile(0.95),
            p99: quantile(0.99),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_rotates_and_sums() {
        let c = WindowedCounter::new(3);
        c.add(5);
        assert_eq!(c.total_last(3), 5);
        c.tick();
        c.add(7);
        assert_eq!(c.per_window(3), vec![7, 5, 0]);
        assert_eq!(c.total_last(2), 12);
        assert_eq!(c.total_last(1), 7);
        // Two more ticks push the first window off the ring.
        c.tick();
        c.tick();
        assert_eq!(c.per_window(3), vec![0, 0, 7]);
        assert_eq!(c.ticks(), 3);
    }

    #[test]
    fn counter_oldest_window_is_zeroed_on_reuse() {
        let c = WindowedCounter::new(2);
        c.add(9);
        c.tick();
        c.tick(); // wraps onto the bucket that held 9
        assert_eq!(c.total_last(2), 0);
    }

    #[test]
    fn histogram_merges_last_windows() {
        let h = WindowedHistogram::new(4);
        for v in [10u64, 20, 30] {
            h.observe(v);
        }
        h.tick();
        h.observe(1000);
        let last = h.summary_last(1);
        assert_eq!(last.count, 1);
        assert_eq!((last.min, last.max), (1000, 1000));
        let both = h.summary_last(2);
        assert_eq!(both.count, 4);
        assert_eq!(both.sum, 1060);
        assert_eq!((both.min, both.max), (10, 1000));
        assert!(both.p99 >= 1000);
        // A full rotation forgets the old observations.
        for _ in 0..4 {
            h.tick();
        }
        assert_eq!(h.summary_last(4), HistogramSummary::default());
    }

    #[test]
    fn empty_summary_is_default() {
        let h = WindowedHistogram::new(2);
        assert_eq!(h.summary_last(2), HistogramSummary::default());
    }

    #[test]
    fn concurrent_adds_all_land_somewhere() {
        let c = WindowedCounter::new(4);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
            s.spawn(|| {
                for _ in 0..2 {
                    c.tick();
                }
            });
        });
        // Observations may straddle ticks but none are lost outright.
        assert_eq!(c.total_last(4), 4000);
    }
}
