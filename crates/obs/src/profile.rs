//! EXPLAIN ANALYZE plan profiles: the per-operator tree an instrumented
//! execution reports.
//!
//! An [`OpProfile`] is one operator's measured behavior — invocations,
//! rows in/out, attributed buffer-pool I/O, wall time — with child
//! operators nested below it; a [`PlanProfile`] wraps one executed plan
//! (one candidate network). The structs are engine-agnostic: `xkw-core`
//! fills them from its nested-loop executor and the CLI renders them
//! with [`PlanProfile::render`].
//!
//! The accounting invariant callers rely on (and the observability test
//! suite asserts): summing [`OpProfile::io_hits`]/[`OpProfile::io_misses`]
//! over a plan's operator tree yields exactly the buffer-pool I/O the
//! engine's `QueryMetrics` attributes to that plan's evaluation — the
//! per-operator numbers are a *decomposition* of the query total, not an
//! independent estimate.

use crate::trace::fmt_ns;

/// One operator's measured behavior in an EXPLAIN ANALYZE run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpProfile {
    /// Human-readable operator description (e.g.
    /// `probe R_paper.f0@c1 [cols 0]`).
    pub label: String,
    /// Times the operator ran (probe/scan calls sent to the store).
    pub invocations: u64,
    /// Tuples fed into the operator across all invocations.
    pub rows_in: u64,
    /// Tuples the operator produced.
    pub rows_out: u64,
    /// Buffer-pool hits attributed to this operator.
    pub io_hits: u64,
    /// Buffer-pool misses attributed to this operator.
    pub io_misses: u64,
    /// Wall time spent inside the operator, nanoseconds.
    pub elapsed_ns: u64,
    /// Nested operators.
    pub children: Vec<OpProfile>,
}

impl OpProfile {
    /// Total attributed logical I/O (hits + misses) over this operator
    /// and everything below it.
    pub fn io_total(&self) -> u64 {
        self.io_hits + self.io_misses + self.children.iter().map(OpProfile::io_total).sum::<u64>()
    }

    /// Hits/misses summed over the subtree.
    pub fn io_breakdown(&self) -> (u64, u64) {
        self.children
            .iter()
            .map(OpProfile::io_breakdown)
            .fold((self.io_hits, self.io_misses), |(h, m), (ch, cm)| {
                (h + ch, m + cm)
            })
    }

    fn render_into(&self, depth: usize, out: &mut String) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        if depth > 0 {
            out.push_str("-> ");
        }
        out.push_str(&format!(
            "{}  (calls={} rows in={} out={} io={}h+{}m time={})\n",
            self.label,
            self.invocations,
            self.rows_in,
            self.rows_out,
            self.io_hits,
            self.io_misses,
            fmt_ns(self.elapsed_ns),
        ));
        for child in &self.children {
            child.render_into(depth + 1, out);
        }
    }
}

/// One executed plan's profile.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlanProfile {
    /// Index of the plan in score order.
    pub plan: usize,
    /// The candidate network, as the optimizer displays it.
    pub name: String,
    /// The plan's score (CN size).
    pub score: usize,
    /// Result rows the plan emitted.
    pub rows_out: u64,
    /// Wall time for the whole plan, nanoseconds.
    pub elapsed_ns: u64,
    /// Whether the top-k threshold pruned this plan before evaluation —
    /// the plan shows with its (zero-I/O) bound line instead of measured
    /// operators, so attributed I/O still sums to the query totals.
    pub pruned: bool,
    /// Whether a query deadline expired before this plan started — like
    /// `pruned`, the plan renders as one zero-I/O line, keeping the
    /// attributed-I/O decomposition exact for degraded captures.
    pub skipped: bool,
    /// The operator tree (driver iteration at the root).
    pub root: OpProfile,
}

impl PlanProfile {
    /// Attributed logical I/O summed over the operator tree.
    pub fn io_total(&self) -> u64 {
        self.root.io_total()
    }

    /// EXPLAIN ANALYZE text rendering of this plan. A pruned plan
    /// renders as a single `pruned` line carrying its score bound.
    pub fn render(&self) -> String {
        if self.pruned {
            return format!(
                "plan {}: {}  (score={} pruned by top-k threshold, io=0h+0m)\n",
                self.plan, self.name, self.score,
            );
        }
        if self.skipped {
            return format!(
                "plan {}: {}  (score={} skipped by query deadline, io=0h+0m)\n",
                self.plan, self.name, self.score,
            );
        }
        let (h, m) = self.root.io_breakdown();
        let mut out = format!(
            "plan {}: {}  (score={} rows={} io={}h+{}m time={})\n",
            self.plan,
            self.name,
            self.score,
            self.rows_out,
            h,
            m,
            fmt_ns(self.elapsed_ns),
        );
        self.root.render_into(1, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PlanProfile {
        PlanProfile {
            plan: 2,
            name: "AUTHOR{k0}-PA-PAPER{k1}".into(),
            score: 3,
            rows_out: 4,
            elapsed_ns: 1_500_000,
            pruned: false,
            skipped: false,
            root: OpProfile {
                label: "drive AUTHOR".into(),
                invocations: 1,
                rows_in: 0,
                rows_out: 7,
                io_hits: 2,
                io_misses: 1,
                elapsed_ns: 1_400_000,
                children: vec![
                    OpProfile {
                        label: "probe R_pa.f0".into(),
                        invocations: 7,
                        rows_in: 7,
                        rows_out: 12,
                        io_hits: 10,
                        io_misses: 4,
                        elapsed_ns: 900_000,
                        children: Vec::new(),
                    },
                    OpProfile {
                        label: "probe R_paper.f0".into(),
                        invocations: 12,
                        rows_in: 12,
                        rows_out: 4,
                        io_hits: 20,
                        io_misses: 0,
                        elapsed_ns: 300_000,
                        children: Vec::new(),
                    },
                ],
            },
        }
    }

    #[test]
    fn io_sums_over_the_tree() {
        let p = sample();
        assert_eq!(p.io_total(), 2 + 1 + 10 + 4 + 20);
        assert_eq!(p.root.io_breakdown(), (32, 5));
    }

    #[test]
    fn pruned_plans_render_the_bound_with_zero_io() {
        let p = PlanProfile {
            plan: 5,
            name: "AUTHOR{k0}-PA-PAPER{k1}".into(),
            score: 9,
            pruned: true,
            ..PlanProfile::default()
        };
        let text = p.render();
        assert!(text.contains("pruned by top-k threshold"), "{text}");
        assert!(text.contains("score=9"), "{text}");
        assert!(text.contains("io=0h+0m"), "{text}");
        assert_eq!(text.lines().count(), 1);
        assert_eq!(p.io_total(), 0);
    }

    #[test]
    fn skipped_plans_render_the_deadline_with_zero_io() {
        let p = PlanProfile {
            plan: 7,
            name: "AUTHOR{k0}-PA-PAPER{k1}".into(),
            score: 4,
            skipped: true,
            ..PlanProfile::default()
        };
        let text = p.render();
        assert!(text.contains("skipped by query deadline"), "{text}");
        assert!(text.contains("io=0h+0m"), "{text}");
        assert_eq!(text.lines().count(), 1);
        assert_eq!(p.io_total(), 0);
    }

    #[test]
    fn render_shows_every_operator() {
        let text = sample().render();
        assert!(text.starts_with("plan 2: AUTHOR{k0}-PA-PAPER{k1}"));
        assert!(text.contains("io=32h+5m"));
        assert!(text.contains("  -> drive AUTHOR  (calls=1"));
        assert!(text.contains("    -> probe R_pa.f0  (calls=7 rows in=7 out=12"));
        assert_eq!(text.lines().count(), 4);
    }
}
