//! # xkw-datagen — synthetic XML workloads for XKeyword
//!
//! The paper evaluates on two datasets: a TPC-H-derived XML document
//! (Figures 1/5/6) and the DBLP database with synthetically added
//! citations averaging 20 per paper (Figure 14, §7). Neither raw dataset
//! is available offline, so this crate generates faithful synthetic
//! equivalents over the *exact* schema and TSS graphs of the paper:
//!
//! * [`tpch`] — persons/orders/lineitems/parts/subparts/products/
//!   suppliers/service-calls, plus the literal Figure 1 document used by
//!   the worked-example tests;
//! * [`dblp`] — conferences/years/papers/authors with reference-based
//!   authorship and citation edges;
//! * [`words`] — a Zipf-distributed vocabulary (implemented from scratch
//!   on `rand`) so keyword selectivities are realistically skewed.

pub mod dblp;
pub mod tpch;
pub mod words;

pub use dblp::{DblpConfig, DblpData};
pub use tpch::{TpchConfig, TpchData};
pub use words::{Vocabulary, Zipf};
