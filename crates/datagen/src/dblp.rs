//! The DBLP-like XML workload of Figure 14 and §7.
//!
//! Schema (Fig. 14):
//!
//! ```text
//! conference ──► cname                       (leaf)
//! conference ──► year*                       (containment)
//! year ──► yval                              (leaf)
//! year ──► paper*                            (containment)
//! paper ──► title, pages, url                (leaves)
//! paper ──ref──► author*                     ("by author" / "of paper")
//! paper ──ref──► paper*                      ("cites" / "is cited by")
//! author ──► aname                           (leaf)
//! ```
//!
//! Target decomposition (Fig. 14): Conference{conference,cname},
//! Year{year,yval}, Paper{paper,title,pages,url}, Author{author,aname}.
//!
//! §7: *"The citations of many papers are not contained in the DBLP
//! database, so we randomly added a set of citations to each such paper,
//! such that the average number of citations of each paper is 20."* The
//! generator does exactly that (configurable).

use crate::words::{Vocabulary, NAMES};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xkw_graph::{
    EdgeKind, MaxOccurs, NodeId, NodeKind, SchemaGraph, TssGraph, TssMapping, XmlGraph,
};

/// Builds the Fig. 14 schema graph.
pub fn schema() -> SchemaGraph {
    let mut s = SchemaGraph::new();
    let conference = s.add_node("conference", NodeKind::All);
    let cname = s.add_node("cname", NodeKind::All);
    let year = s.add_node("year", NodeKind::All);
    let yval = s.add_node("yval", NodeKind::All);
    let paper = s.add_node("paper", NodeKind::All);
    let title = s.add_node("title", NodeKind::All);
    let pages = s.add_node("pages", NodeKind::All);
    let url = s.add_node("url", NodeKind::All);
    let author = s.add_node("author", NodeKind::All);
    let aname = s.add_node("aname", NodeKind::All);

    s.add_edge(conference, cname, EdgeKind::Containment, MaxOccurs::One);
    s.add_edge(conference, year, EdgeKind::Containment, MaxOccurs::Many);
    s.add_edge(year, yval, EdgeKind::Containment, MaxOccurs::One);
    s.add_edge(year, paper, EdgeKind::Containment, MaxOccurs::Many);
    s.add_edge(paper, title, EdgeKind::Containment, MaxOccurs::One);
    s.add_edge(paper, pages, EdgeKind::Containment, MaxOccurs::One);
    s.add_edge(paper, url, EdgeKind::Containment, MaxOccurs::One);
    s.add_edge(paper, author, EdgeKind::Reference, MaxOccurs::Many);
    s.add_edge(paper, paper, EdgeKind::Reference, MaxOccurs::Many);
    s.add_edge(author, aname, EdgeKind::Containment, MaxOccurs::One);
    s
}

/// Builds the Fig. 14 TSS graph with its semantic annotations.
pub fn tss_graph() -> TssGraph {
    let s = schema();
    let mut m = TssMapping::new(&s);
    let conference = m.tss("Conference", &["conference", "cname"]);
    let year = m.tss("Year", &["year", "yval"]);
    let paper = m.tss("Paper", &["paper", "title", "pages", "url"]);
    let author = m.tss("Author", &["author", "aname"]);
    let mut g = m.build().expect("DBLP TSS graph is valid");
    g.set_edge_desc(conference, year, "in year", "of conference");
    g.set_edge_desc(year, paper, "contains paper", "in issue");
    g.set_edge_desc(paper, author, "by author", "of paper");
    g.set_edge_desc(paper, paper, "cites", "is cited by");
    g
}

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct DblpConfig {
    /// Number of conferences.
    pub conferences: usize,
    /// Years per conference.
    pub years_per_conference: usize,
    /// Papers per year (average).
    pub papers_per_year: usize,
    /// Size of the author pool.
    pub authors: usize,
    /// Authors per paper (average).
    pub authors_per_paper: usize,
    /// Citations per paper (average; the paper uses 20).
    pub citations_per_paper: usize,
    /// Title vocabulary size.
    pub vocabulary: usize,
    /// Random seed.
    pub seed: u64,
}

impl Default for DblpConfig {
    fn default() -> Self {
        Self {
            conferences: 5,
            years_per_conference: 5,
            papers_per_year: 40,
            authors: 300,
            authors_per_paper: 3,
            citations_per_paper: 20,
            vocabulary: 500,
            seed: 0xD8_1F,
        }
    }
}

impl DblpConfig {
    /// The default configuration scaled to roughly `scale` × 1000 papers
    /// (`scale = 1` ≈ the default's 1000): papers grow linearly via
    /// `papers_per_year`, the author pool and vocabulary grow with the
    /// square root so co-authorship and keyword selectivity keep their
    /// shape. `dblp --scale 25` and beyond is the regime the packed
    /// postings format exists for.
    pub fn at_scale(scale: usize) -> Self {
        let scale = scale.max(1);
        let sqrt = (scale as f64).sqrt();
        Self {
            papers_per_year: 40 * scale,
            authors: (300.0 * sqrt) as usize,
            vocabulary: (500.0 * sqrt) as usize,
            ..Self::default()
        }
    }
}

/// A generated DBLP-like dataset.
#[derive(Debug)]
pub struct DblpData {
    /// The data graph (conforms to [`schema`]).
    pub graph: XmlGraph,
    /// The TSS graph (which owns the schema graph).
    pub tss: TssGraph,
    /// All paper nodes (handy for picking query targets).
    pub papers: Vec<NodeId>,
    /// All author nodes.
    pub authors: Vec<NodeId>,
}

impl DblpConfig {
    /// Total papers this configuration will generate.
    pub fn total_papers(&self) -> usize {
        self.conferences * self.years_per_conference * self.papers_per_year
    }

    /// Generates a dataset. Deterministic under a fixed seed.
    pub fn generate(&self) -> DblpData {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let vocab = Vocabulary::new(self.vocabulary, 1.0);
        let mut g = XmlGraph::new();

        // Author pool: surname pool is synthetic words, so two-keyword
        // author queries have tunable selectivity.
        let authors: Vec<NodeId> = (0..self.authors)
            .map(|i| {
                let a = g.add_node("author", None);
                let full = format!(
                    "{} {}",
                    NAMES[i % NAMES.len()],
                    format_args!("surname{}", i % (self.authors / 2).max(1))
                );
                let n = g.add_node("aname", Some(&full));
                g.add_edge(a, n, EdgeKind::Containment);
                a
            })
            .collect();

        let mut papers: Vec<NodeId> = Vec::with_capacity(self.total_papers());
        for c in 0..self.conferences {
            let conf = g.add_node("conference", None);
            let cn = g.add_node("cname", Some(&format!("CONF{c}")));
            g.add_edge(conf, cn, EdgeKind::Containment);
            for y in 0..self.years_per_conference {
                let year = g.add_node("year", None);
                let yv = g.add_node("yval", Some(&format!("{}", 1998 + y)));
                g.add_edge(conf, year, EdgeKind::Containment);
                g.add_edge(year, yv, EdgeKind::Containment);
                for p in 0..self.papers_per_year {
                    let paper = g.add_node("paper", None);
                    let title = g.add_node("title", Some(&vocab.sentence(&mut rng, 6)));
                    let pages =
                        g.add_node("pages", Some(&format!("{}-{}", p * 12 + 1, p * 12 + 12)));
                    let url = g.add_node("url", Some(&format!("db/conf/c{c}/y{y}/p{p}.html")));
                    g.add_edge(year, paper, EdgeKind::Containment);
                    g.add_edge(paper, title, EdgeKind::Containment);
                    g.add_edge(paper, pages, EdgeKind::Containment);
                    g.add_edge(paper, url, EdgeKind::Containment);
                    let n_auth = rng.gen_range(1..=self.authors_per_paper * 2 - 1);
                    let mut chosen = std::collections::HashSet::new();
                    for _ in 0..n_auth {
                        chosen.insert(rng.gen_range(0..authors.len()));
                    }
                    for ai in chosen {
                        g.add_edge(paper, authors[ai], EdgeKind::Reference);
                    }
                    papers.push(paper);
                }
            }
        }

        // Citations: uniform random, self-citations excluded, average
        // `citations_per_paper` per paper.
        if papers.len() > 1 && self.citations_per_paper > 0 {
            for (i, &p) in papers.iter().enumerate() {
                let n_cites = rng.gen_range(0..=self.citations_per_paper * 2);
                let mut cited = std::collections::HashSet::new();
                for _ in 0..n_cites {
                    let j = rng.gen_range(0..papers.len());
                    if j != i {
                        cited.insert(j);
                    }
                }
                for j in cited {
                    g.add_edge(p, papers[j], EdgeKind::Reference);
                }
            }
        }

        DblpData {
            graph: g,
            tss: tss_graph(),
            papers,
            authors,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> DblpConfig {
        DblpConfig {
            conferences: 2,
            years_per_conference: 2,
            papers_per_year: 10,
            authors: 30,
            citations_per_paper: 5,
            ..DblpConfig::default()
        }
    }

    #[test]
    fn generated_data_conforms() {
        let data = small().generate();
        schema().check_conformance(&data.graph).unwrap();
        assert_eq!(data.papers.len(), 40);
        assert_eq!(data.authors.len(), 30);
    }

    #[test]
    fn tss_graph_shape() {
        let t = tss_graph();
        assert_eq!(t.node_count(), 4);
        let paper = t.node_ids().find(|&i| t.node(i).name == "Paper").unwrap();
        let author = t.node_ids().find(|&i| t.node(i).name == "Author").unwrap();
        // Self-citation TSS edge and authorship edge exist.
        let cite = t.find_edge(paper, paper).expect("cites edge");
        assert_eq!(t.edge(cite).kind, EdgeKind::Reference);
        assert!(t.edge(cite).forward_many);
        assert!(t.edge(cite).backward_many);
        assert!(t.find_edge(paper, author).is_some());
    }

    #[test]
    fn citations_close_to_average() {
        let cfg = DblpConfig {
            citations_per_paper: 20,
            ..DblpConfig::default()
        };
        let data = cfg.generate();
        let total_cites: usize = data
            .papers
            .iter()
            .map(|&p| {
                data.graph
                    .reference_targets(p)
                    .iter()
                    .filter(|&&t| data.graph.tag(t) == "paper")
                    .count()
            })
            .sum();
        let avg = total_cites as f64 / data.papers.len() as f64;
        assert!((15.0..25.0).contains(&avg), "avg citations {avg}");
    }

    #[test]
    fn authors_are_shared_between_papers() {
        let data = small().generate();
        let shared = data.authors.iter().any(|&a| {
            data.graph
                .reference_sources(a)
                .iter()
                .filter(|&&s| data.graph.tag(s) == "paper")
                .count()
                > 1
        });
        assert!(shared, "some author should have written several papers");
    }

    #[test]
    fn deterministic() {
        let a = small().generate();
        let b = small().generate();
        assert_eq!(a.graph.node_count(), b.graph.node_count());
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
    }
}
