//! Synthetic vocabularies with Zipf-distributed sampling.
//!
//! Keyword-search performance depends heavily on keyword selectivity, so
//! the generators draw words from a Zipf distribution (rank-`i` word has
//! probability ∝ 1/i^s), implemented from scratch: cumulative weights +
//! binary search. Deterministic under a fixed seed.

use rand::Rng;

/// A Zipf(|V|, s) sampler over ranks `0..n`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a sampler over `n` ranks with exponent `s` (s = 1.0 is the
    /// classic Zipf law).
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s.is_finite(), "Zipf exponent must be finite");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 1..=n {
            acc += 1.0 / (i as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    /// Draws a rank in `0..n` (0 is the most frequent).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler is trivial.
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

/// A vocabulary of synthetic words (`w0`, `w1`, …) plus curated pools of
/// person names, nations and product nouns used to make the paper's
/// worked examples expressible.
#[derive(Debug, Clone)]
pub struct Vocabulary {
    words: Vec<String>,
    zipf: Zipf,
}

/// Person first names used by the generators.
pub const NAMES: &[&str] = &[
    "John", "Mike", "Mary", "Anna", "Yannis", "Andrey", "Vagelis", "Laura", "Peter", "Nadia",
    "Oscar", "Wei", "Tomo", "Ingrid", "Carlos", "Fatima",
];

/// Nations used by the generators.
pub const NATIONS: &[&str] = &[
    "US", "Greece", "Russia", "Japan", "Brazil", "Kenya", "France", "India",
];

/// Product/part nouns; the first few deliberately include the paper's
/// examples (TV, VCR, DVD).
pub const PRODUCT_NOUNS: &[&str] = &[
    "TV",
    "VCR",
    "DVD",
    "radio",
    "camera",
    "tuner",
    "amplifier",
    "antenna",
    "speaker",
    "remote",
    "screen",
    "cable",
    "battery",
    "lens",
    "tripod",
    "recorder",
];

impl Vocabulary {
    /// Creates `n` synthetic words with a Zipf(s) law over them.
    pub fn new(n: usize, s: f64) -> Self {
        Self {
            words: (0..n).map(|i| format!("w{i}")).collect(),
            zipf: Zipf::new(n, s),
        }
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// The word at a given rank.
    pub fn word(&self, rank: usize) -> &str {
        &self.words[rank]
    }

    /// Draws a Zipf-distributed word.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> &str {
        &self.words[self.zipf.sample(rng)]
    }

    /// Draws a sentence of `len` Zipf words.
    pub fn sentence<R: Rng + ?Sized>(&self, rng: &mut R, len: usize) -> String {
        let mut out = String::new();
        for i in 0..len {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(self.sample(rng));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let z = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            let r = z.sample(&mut rng);
            assert!(r < 100);
            counts[r] += 1;
        }
        // Rank 0 should dominate rank 50 by roughly 50x; allow slack.
        assert!(counts[0] > counts[50] * 10);
        // Every head rank should appear.
        assert!(counts[..5].iter().all(|&c| c > 0));
    }

    #[test]
    fn zipf_zero_exponent_is_uniformish() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 700 && c < 1300));
    }

    #[test]
    fn vocabulary_sentences() {
        let v = Vocabulary::new(50, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let s = v.sentence(&mut rng, 5);
        assert_eq!(s.split(' ').count(), 5);
        assert!(s.split(' ').all(|w| w.starts_with('w')));
    }

    #[test]
    fn deterministic_under_seed() {
        let v = Vocabulary::new(50, 1.0);
        let a: Vec<String> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..20).map(|_| v.sample(&mut rng).to_owned()).collect()
        };
        let b: Vec<String> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..20).map(|_| v.sample(&mut rng).to_owned()).collect()
        };
        assert_eq!(a, b);
    }
}
