//! The TPC-H-like XML workload of Figures 1, 5 and 6.
//!
//! Schema (Fig. 5; solid = containment, dotted = reference, `line` is the
//! only choice node):
//!
//! ```text
//! person ──► name, nation                     (leaves)
//! person ──► order*, service_call*            (containment)
//! order  ──► odate; order ──► lineitem*       (containment)
//! lineitem ──► quantity, ship                 (leaves)
//! lineitem ──► line¹ (choice, dummy) ──ref──► part
//!                                   └──────► product
//! lineitem ──► supplier¹ (dummy) ──ref──► person
//! part ──► key, pname; part ──► sub* (dummy) ──ref──► part
//! product ──► prodkey, descr
//! service_call ──► scdate, scdescr; service_call ──ref──► product
//! ```
//!
//! Target decomposition (Fig. 6): segments Person{person,name,nation},
//! Order{order,odate}, Lineitem{lineitem,quantity,ship},
//! Part{part,key,pname}, Product{product,prodkey,descr},
//! ServiceCall{service_call,scdate,scdescr}; `line`, `supplier` and `sub`
//! are dummy schema nodes.
//!
//! [`figure1`] builds the literal Figure 1 document so the paper's worked
//! examples ("John, VCR" results of sizes 6 and 8; the four "US, VCR"
//! results of Figure 2) are reproducible verbatim in tests.

use crate::words::{Vocabulary, NAMES, NATIONS, PRODUCT_NOUNS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xkw_graph::{
    EdgeKind, MaxOccurs, NodeId, NodeKind, SchemaGraph, TssGraph, TssMapping, XmlGraph,
};

/// Builds the Fig. 5 schema graph.
pub fn schema() -> SchemaGraph {
    let mut s = SchemaGraph::new();
    let person = s.add_node("person", NodeKind::All);
    let name = s.add_node("name", NodeKind::All);
    let nation = s.add_node("nation", NodeKind::All);
    let order = s.add_node("order", NodeKind::All);
    let odate = s.add_node("odate", NodeKind::All);
    let lineitem = s.add_node("lineitem", NodeKind::All);
    let quantity = s.add_node("quantity", NodeKind::All);
    let ship = s.add_node("ship", NodeKind::All);
    let line = s.add_node("line", NodeKind::Choice);
    let supplier = s.add_node("supplier", NodeKind::All);
    let part = s.add_node("part", NodeKind::All);
    let key = s.add_node("key", NodeKind::All);
    let pname = s.add_node("pname", NodeKind::All);
    let sub = s.add_node("sub", NodeKind::All);
    let product = s.add_node("product", NodeKind::All);
    let prodkey = s.add_node("prodkey", NodeKind::All);
    let descr = s.add_node("descr", NodeKind::All);
    let service_call = s.add_node("service_call", NodeKind::All);
    let scdate = s.add_node("scdate", NodeKind::All);
    let scdescr = s.add_node("scdescr", NodeKind::All);

    s.add_edge(person, name, EdgeKind::Containment, MaxOccurs::One);
    s.add_edge(person, nation, EdgeKind::Containment, MaxOccurs::One);
    s.add_edge(person, order, EdgeKind::Containment, MaxOccurs::Many);
    s.add_edge(person, service_call, EdgeKind::Containment, MaxOccurs::Many);
    s.add_edge(order, odate, EdgeKind::Containment, MaxOccurs::One);
    s.add_edge(order, lineitem, EdgeKind::Containment, MaxOccurs::Many);
    s.add_edge(lineitem, quantity, EdgeKind::Containment, MaxOccurs::One);
    s.add_edge(lineitem, ship, EdgeKind::Containment, MaxOccurs::One);
    s.add_edge(lineitem, line, EdgeKind::Containment, MaxOccurs::One);
    s.add_edge(line, part, EdgeKind::Reference, MaxOccurs::One);
    s.add_edge(line, product, EdgeKind::Containment, MaxOccurs::One);
    s.add_edge(lineitem, supplier, EdgeKind::Containment, MaxOccurs::One);
    s.add_edge(supplier, person, EdgeKind::Reference, MaxOccurs::One);
    s.add_edge(part, key, EdgeKind::Containment, MaxOccurs::One);
    s.add_edge(part, pname, EdgeKind::Containment, MaxOccurs::One);
    s.add_edge(part, sub, EdgeKind::Containment, MaxOccurs::Many);
    s.add_edge(sub, part, EdgeKind::Reference, MaxOccurs::One);
    s.add_edge(product, prodkey, EdgeKind::Containment, MaxOccurs::One);
    s.add_edge(product, descr, EdgeKind::Containment, MaxOccurs::One);
    s.add_edge(service_call, scdate, EdgeKind::Containment, MaxOccurs::One);
    s.add_edge(service_call, scdescr, EdgeKind::Containment, MaxOccurs::One);
    s.add_edge(service_call, product, EdgeKind::Reference, MaxOccurs::One);
    s
}

/// Builds the Fig. 6 TSS graph (with the paper's semantic annotations).
pub fn tss_graph() -> TssGraph {
    let s = schema();
    let mut m = TssMapping::new(&s);
    let person = m.tss("Person", &["person", "name", "nation"]);
    let order = m.tss("Order", &["order", "odate"]);
    let lineitem = m.tss("Lineitem", &["lineitem", "quantity", "ship"]);
    let part = m.tss("Part", &["part", "key", "pname"]);
    let product = m.tss("Product", &["product", "prodkey", "descr"]);
    let service_call = m.tss("ServiceCall", &["service_call", "scdate", "scdescr"]);
    let mut g = m.build().expect("TPC-H TSS graph is valid");
    g.set_edge_desc(person, order, "placed", "placed by");
    g.set_edge_desc(person, service_call, "issued", "issued by");
    g.set_edge_desc(order, lineitem, "contains", "is contained in");
    g.set_edge_desc(lineitem, part, "line", "line of");
    g.set_edge_desc(lineitem, product, "line", "line of");
    g.set_edge_desc(lineitem, person, "supplied by", "supplier of");
    g.set_edge_desc(part, part, "subpart", "subpart of");
    g.set_edge_desc(service_call, product, "about", "subject of");
    g
}

/// The literal Figure 1 document. Returned node ids:
/// `(graph, john, mike)` where `john`/`mike` are the two person nodes.
pub fn figure1() -> (XmlGraph, NodeId, NodeId) {
    let mut g = XmlGraph::new();

    // Persons.
    let john = g.add_node("person", None);
    let john_name = g.add_node("name", Some("John"));
    let john_nation = g.add_node("nation", Some("US"));
    g.add_edge(john, john_name, EdgeKind::Containment);
    g.add_edge(john, john_nation, EdgeKind::Containment);

    let mike = g.add_node("person", None);
    let mike_name = g.add_node("name", Some("Mike"));
    let mike_nation = g.add_node("nation", Some("US"));
    g.add_edge(mike, mike_name, EdgeKind::Containment);
    g.add_edge(mike, mike_nation, EdgeKind::Containment);

    // Parts: pa3 = TV(1005) with subparts pa1 = VCR(1008), pa2 = VCR(1009).
    let pa3 = part(&mut g, "1005", "TV");
    let pa1 = part(&mut g, "1008", "VCR");
    let pa2 = part(&mut g, "1009", "VCR");
    for target in [pa1, pa2] {
        let sub = g.add_node("sub", None);
        g.add_edge(pa3, sub, EdgeKind::Containment);
        g.add_edge(sub, target, EdgeKind::Reference);
    }

    // Product: "set of VCR and DVD", prodkey 2005.
    // (Created inside l0's line below — products are contained in lines.)

    // Mike's order: l0 (product, supplied by John), l1, l2 (part TV,
    // supplied by John).
    let o1 = g.add_node("order", None);
    let o1d = g.add_node("odate", Some("Nov-22-2002"));
    g.add_edge(mike, o1, EdgeKind::Containment);
    g.add_edge(o1, o1d, EdgeKind::Containment);

    let (_l0, l0_line) = lineitem(&mut g, o1, "10", "Nov-25-2002", john);
    let prod1 = g.add_node("product", None);
    let prod1_key = g.add_node("prodkey", Some("2005"));
    let prod1_descr = g.add_node("descr", Some("set of VCR and DVD"));
    g.add_edge(l0_line, prod1, EdgeKind::Containment);
    g.add_edge(prod1, prod1_key, EdgeKind::Containment);
    g.add_edge(prod1, prod1_descr, EdgeKind::Containment);

    let (_l1, l1_line) = lineitem(&mut g, o1, "10", "Oct-28-2002", john);
    g.add_edge(l1_line, pa3, EdgeKind::Reference);
    let (_l2, l2_line) = lineitem(&mut g, o1, "10", "Oct-30-2002", john);
    g.add_edge(l2_line, pa3, EdgeKind::Reference);

    // John's order: l3 (part radio, supplied by Mike).
    let o2 = g.add_node("order", None);
    let o2d = g.add_node("odate", Some("Oct-2-2002"));
    g.add_edge(john, o2, EdgeKind::Containment);
    g.add_edge(o2, o2d, EdgeKind::Containment);
    let pa4 = part(&mut g, "1002", "radio");
    let (_l3, l3_line) = lineitem(&mut g, o2, "6", "Oct-12-2002", mike);
    g.add_edge(l3_line, pa4, EdgeKind::Reference);

    // Mike's service call about the product.
    let sc = g.add_node("service_call", None);
    let scd = g.add_node("scdate", Some("Nov-30-2002"));
    let sce = g.add_node("scdescr", Some("DVD error"));
    g.add_edge(mike, sc, EdgeKind::Containment);
    g.add_edge(sc, scd, EdgeKind::Containment);
    g.add_edge(sc, sce, EdgeKind::Containment);
    g.add_edge(sc, prod1, EdgeKind::Reference);

    (g, john, mike)
}

fn part(g: &mut XmlGraph, key: &str, name: &str) -> NodeId {
    let p = g.add_node("part", None);
    let k = g.add_node("key", Some(key));
    let n = g.add_node("pname", Some(name));
    g.add_edge(p, k, EdgeKind::Containment);
    g.add_edge(p, n, EdgeKind::Containment);
    p
}

fn lineitem(
    g: &mut XmlGraph,
    order: NodeId,
    quantity: &str,
    ship: &str,
    supplier_person: NodeId,
) -> (NodeId, NodeId) {
    let l = g.add_node("lineitem", None);
    let q = g.add_node("quantity", Some(quantity));
    let sh = g.add_node("ship", Some(ship));
    let line = g.add_node("line", None);
    let sup = g.add_node("supplier", None);
    g.add_edge(order, l, EdgeKind::Containment);
    g.add_edge(l, q, EdgeKind::Containment);
    g.add_edge(l, sh, EdgeKind::Containment);
    g.add_edge(l, line, EdgeKind::Containment);
    g.add_edge(l, sup, EdgeKind::Containment);
    g.add_edge(sup, supplier_person, EdgeKind::Reference);
    (l, line)
}

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct TpchConfig {
    /// Number of persons.
    pub persons: usize,
    /// Orders per person (average).
    pub orders_per_person: usize,
    /// Lineitems per order (average).
    pub lineitems_per_order: usize,
    /// Number of catalogue parts.
    pub parts: usize,
    /// Average subparts per part.
    pub subparts_per_part: usize,
    /// Fraction of lineitems whose choice takes the `product` alternative
    /// (the rest reference a part), in percent.
    pub product_line_pct: u32,
    /// Service calls per person (average).
    pub service_calls_per_person: usize,
    /// Random seed.
    pub seed: u64,
}

impl Default for TpchConfig {
    fn default() -> Self {
        Self {
            persons: 50,
            orders_per_person: 3,
            lineitems_per_order: 4,
            parts: 80,
            subparts_per_part: 2,
            product_line_pct: 30,
            service_calls_per_person: 1,
            seed: 0xCAFE,
        }
    }
}

/// A generated TPC-H-like dataset.
#[derive(Debug)]
pub struct TpchData {
    /// The data graph (conforms to [`schema`]).
    pub graph: XmlGraph,
    /// The TSS graph (which owns the schema graph).
    pub tss: TssGraph,
}

impl TpchConfig {
    /// Generates a dataset. Deterministic under a fixed seed.
    pub fn generate(&self) -> TpchData {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let vocab = Vocabulary::new(200, 1.0);
        let mut g = XmlGraph::new();

        // Persons.
        let persons: Vec<NodeId> = (0..self.persons)
            .map(|i| {
                let p = g.add_node("person", None);
                let n = g.add_node("name", Some(NAMES[i % NAMES.len()]));
                let nat = g.add_node("nation", Some(NATIONS[rng.gen_range(0..NATIONS.len())]));
                g.add_edge(p, n, EdgeKind::Containment);
                g.add_edge(p, nat, EdgeKind::Containment);
                p
            })
            .collect();

        // Parts with subpart references (to later-indexed parts only, so
        // part containment stays acyclic like a bill of materials).
        let parts: Vec<NodeId> = (0..self.parts)
            .map(|i| {
                part(
                    &mut g,
                    &format!("{}", 1000 + i),
                    PRODUCT_NOUNS[rng.gen_range(0..PRODUCT_NOUNS.len())],
                )
            })
            .collect();
        for (i, &p) in parts.iter().enumerate() {
            if i + 1 >= parts.len() {
                break;
            }
            for _ in 0..rng.gen_range(0..=self.subparts_per_part * 2) {
                let target = parts[rng.gen_range(i + 1..parts.len())];
                let sub = g.add_node("sub", None);
                g.add_edge(p, sub, EdgeKind::Containment);
                g.add_edge(sub, target, EdgeKind::Reference);
            }
        }

        // Orders, lineitems, service calls.
        let mut products: Vec<NodeId> = Vec::new();
        for (pi, &p) in persons.iter().enumerate() {
            for oi in 0..self.orders_per_person {
                let o = g.add_node("order", None);
                let od = g.add_node(
                    "odate",
                    Some(&format!("2002-{:02}-{:02}", 1 + oi % 12, 1 + pi % 28)),
                );
                g.add_edge(p, o, EdgeKind::Containment);
                g.add_edge(o, od, EdgeKind::Containment);
                for _ in 0..rng.gen_range(1..=self.lineitems_per_order * 2 - 1) {
                    let supplier = persons[rng.gen_range(0..persons.len())];
                    let (_, line) = lineitem(
                        &mut g,
                        o,
                        &format!("{}", rng.gen_range(1..50)),
                        &format!(
                            "2002-{:02}-{:02}",
                            rng.gen_range(1..13),
                            rng.gen_range(1..29)
                        ),
                        supplier,
                    );
                    if rng.gen_range(0..100) < self.product_line_pct {
                        let prod = g.add_node("product", None);
                        let pk =
                            g.add_node("prodkey", Some(&format!("{}", rng.gen_range(2000..3000))));
                        let mut descr = vocab.sentence(&mut rng, 3);
                        descr.push(' ');
                        descr.push_str(PRODUCT_NOUNS[rng.gen_range(0..PRODUCT_NOUNS.len())]);
                        let d = g.add_node("descr", Some(&descr));
                        g.add_edge(line, prod, EdgeKind::Containment);
                        g.add_edge(prod, pk, EdgeKind::Containment);
                        g.add_edge(prod, d, EdgeKind::Containment);
                        products.push(prod);
                    } else {
                        let target = parts[rng.gen_range(0..parts.len())];
                        g.add_edge(line, target, EdgeKind::Reference);
                    }
                }
            }
        }
        // Service calls reference products (second pass so the product
        // pool is complete); skipped if no lineitem produced a product.
        if !products.is_empty() {
            for &p in &persons {
                for _ in 0..self.service_calls_per_person {
                    let target = products[rng.gen_range(0..products.len())];
                    let sc = g.add_node("service_call", None);
                    let scd = g.add_node("scdate", Some("2002-12-01"));
                    let sce = g.add_node("scdescr", Some(&vocab.sentence(&mut rng, 2)));
                    g.add_edge(p, sc, EdgeKind::Containment);
                    g.add_edge(sc, scd, EdgeKind::Containment);
                    g.add_edge(sc, sce, EdgeKind::Containment);
                    g.add_edge(sc, target, EdgeKind::Reference);
                }
            }
        }

        TpchData {
            graph: g,
            tss: tss_graph(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_conforms_to_schema() {
        let (g, _, _) = figure1();
        schema().check_conformance(&g).unwrap();
    }

    #[test]
    fn figure1_contains_worked_example_keywords() {
        let (g, john, _) = figure1();
        let name = g.containment_children(john)[0];
        assert_eq!(g.value(name), Some("John"));
        let vcr_parts: Vec<_> = g
            .node_ids()
            .filter(|&n| g.tag(n) == "pname" && g.value(n) == Some("VCR"))
            .collect();
        assert_eq!(vcr_parts.len(), 2);
        assert!(g
            .node_ids()
            .any(|n| g.value(n) == Some("set of VCR and DVD")));
    }

    #[test]
    fn tss_graph_shape() {
        let t = tss_graph();
        assert_eq!(t.node_count(), 6);
        let names: Vec<&str> = t.node_ids().map(|i| t.node(i).name.as_str()).collect();
        assert!(names.contains(&"Person"));
        assert!(names.contains(&"Part"));
        // Part -> Part self edge via `sub`.
        let part = t.node_ids().find(|&i| t.node(i).name == "Part").unwrap();
        assert!(t.find_edge(part, part).is_some());
    }

    #[test]
    fn generated_data_conforms() {
        let cfg = TpchConfig {
            persons: 10,
            parts: 15,
            ..TpchConfig::default()
        };
        let data = cfg.generate();
        schema().check_conformance(&data.graph).unwrap();
        assert!(data.graph.node_count() > 100);
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = TpchConfig::default();
        let a = cfg.generate();
        let b = cfg.generate();
        assert_eq!(a.graph.node_count(), b.graph.node_count());
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
    }
}
