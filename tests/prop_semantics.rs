//! Randomized end-to-end semantics check: on arbitrary generated TPC-H
//! instances and arbitrary value-keyword pairs, the full relational
//! pipeline (CN generation → reduction → optimizer → execution) must
//! produce exactly the MTTON set of the brute-force §3.1 oracle.

use proptest::prelude::*;
use std::collections::HashSet;
use xkeyword::core::exec::ExecMode;
use xkeyword::core::prelude::*;
use xkeyword::core::semantics::enumerate_mttons;
use xkeyword::core::xkeyword::DecompositionSpec;
use xkeyword::datagen::tpch::TpchConfig;

/// Collects candidate query keywords: leaf-value tokens that occur in the
/// data but never inside dummy elements (dummies carry no target object,
/// so the oracle and the engine would legitimately disagree on them).
fn value_keywords(g: &xkeyword::graph::XmlGraph) -> Vec<String> {
    let mut out: HashSet<String> = HashSet::new();
    for n in g.node_ids() {
        if let Some(v) = g.value(n) {
            for t in xkeyword::graph::graph::tokenize(v) {
                if t.chars().any(|c| c.is_alphabetic()) {
                    out.insert(t);
                }
            }
        }
    }
    let mut v: Vec<String> = out.into_iter().collect();
    v.sort();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn engine_equals_oracle_on_random_tpch(
        seed in 0u64..10_000,
        persons in 3usize..8,
        parts in 4usize..10,
        ka in 0usize..1000,
        kb in 0usize..1000,
        spec_choice in 0usize..3,
    ) {
        let cfg = TpchConfig {
            persons,
            orders_per_person: 2,
            lineitems_per_order: 2,
            parts,
            subparts_per_part: 1,
            product_line_pct: 40,
            service_calls_per_person: 1,
            seed,
        };
        let data = cfg.generate();
        let keywords = value_keywords(&data.graph);
        prop_assume!(keywords.len() >= 2);
        let a = keywords[ka % keywords.len()].clone();
        let b = keywords[kb % keywords.len()].clone();
        prop_assume!(a != b);

        let spec = match spec_choice {
            0 => DecompositionSpec::Minimal,
            1 => DecompositionSpec::Complete { l: 2 },
            _ => DecompositionSpec::XKeyword { m: 4, b: 2 },
        };
        let xk = XKeyword::load(
            data.graph,
            data.tss,
            LoadOptions {
                decomposition: spec,
                ..LoadOptions::default()
            },
        )
        .unwrap();

        let z = 6;
        let kws = [a.as_str(), b.as_str()];
        let got = xk
            .query_all(&kws, z, ExecMode::Cached { capacity: 2048 })
            .mttons();
        let want = enumerate_mttons(&xk.graph(), &xk.targets(), &kws, z);
        prop_assert_eq!(got, want, "keywords {:?} seed {}", kws, seed);
    }
}
