//! Fault-injection robustness suite.
//!
//! The acceptance properties of the fault model (DESIGN.md §5):
//!
//! 1. **Determinism** — a transient-only fault plan (retryable read
//!    errors + slow pages) yields byte-identical results to a
//!    fault-free run, at every exec thread count.
//! 2. **Corruption is never silent** — a bit flip in a heap or
//!    clustered (index-organized B-tree) page surfaces as
//!    [`StoreError::CorruptPage`] naming the page, or as a degraded
//!    result carrying that error; never as wrong rows.
//! 3. **Deadlines are honored** — a tight deadline against slow-page
//!    faults returns a degraded partial answer within 2× the deadline,
//!    and the [`Degradation`] skipped-plan count matches the metrics
//!    the engine publishes.
//!
//! CI runs this suite across a `{fault seed} × {exec threads}` matrix
//! via `XKW_FAULT_SEED` / `XKW_EXEC_THREADS`; without the env vars the
//! tests sweep both seeds and 1/2/8 threads internally.

use proptest::prelude::*;
use std::time::{Duration, Instant};
use xkeyword::core::exec::{try_all_plans_mt_within, ExecMode};
use xkeyword::core::prelude::*;
use xkeyword::core::xkeyword::DecompositionSpec;
use xkeyword::datagen::tpch;
use xkeyword::store::{Db, FaultKind, FaultSpec, FaultTarget, PhysicalOptions, Row, StoreError};

fn cached() -> ExecMode {
    ExecMode::Cached { capacity: 1024 }
}

/// The two fixed seeds CI pins (override with `XKW_FAULT_SEED`).
fn fault_seeds() -> Vec<u64> {
    match std::env::var("XKW_FAULT_SEED") {
        Ok(s) => vec![s.parse().expect("XKW_FAULT_SEED must be a u64")],
        Err(_) => vec![0xA5A5, 0x5EED],
    }
}

/// Exec thread counts to sweep (override with `XKW_EXEC_THREADS`).
fn exec_threads() -> Vec<usize> {
    match std::env::var("XKW_EXEC_THREADS") {
        Ok(s) => vec![s.parse().expect("XKW_EXEC_THREADS must be a usize")],
        Err(_) => vec![1, 2, 8],
    }
}

/// Figure 1 with a deliberately tiny buffer pool, so probes actually
/// reach the (possibly faulty) disk instead of staying pool-resident.
fn fig1_with(faults: Option<FaultSpec>, pool_pages: usize) -> XKeyword {
    let (graph, _, _) = tpch::figure1();
    XKeyword::load(
        graph,
        tpch::tss_graph(),
        LoadOptions {
            decomposition: DecompositionSpec::XKeyword { m: 6, b: 2 },
            pool_pages,
            faults,
            ..LoadOptions::default()
        },
    )
    .unwrap()
}

const QUERIES: [&[&str]; 4] = [&["john", "vcr"], &["us", "vcr"], &["john", "us"], &["tv"]];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Transient-only fault plans cost retries, never answers: results
    /// are byte-identical (same rows, same order) to the fault-free
    /// run at every seed and thread count.
    #[test]
    fn transient_only_faults_preserve_results(
        p_pct in 5u32..60,
        slow_pct in 0u32..50,
        qpick in 0usize..4,
    ) {
        let p = f64::from(p_pct) / 100.0;
        let slow_p = f64::from(slow_pct) / 100.0;
        let keywords = QUERIES[qpick];
        let baseline = fig1_with(None, 4);
        let plans = baseline.plans(keywords, 8);
        let want = try_all_plans_mt_within(&baseline.db, &baseline.catalog(), &plans, cached(), 1, None)
            .unwrap()
            .rows;
        for seed in fault_seeds() {
            let spec = FaultSpec::new(seed)
                .rule(FaultKind::TransientRead, FaultTarget::All, p)
                .slow(FaultTarget::All, slow_p, 20_000);
            prop_assert!(spec.is_transient_only());
            let xk = fig1_with(Some(spec), 4);
            let fplans = xk.plans(keywords, 8);
            prop_assert_eq!(fplans.len(), plans.len());
            for threads in exec_threads() {
                let got = try_all_plans_mt_within(
                    &xk.db, &xk.catalog(), &fplans, cached(), threads, None,
                )
                .unwrap();
                prop_assert_eq!(
                    &got.rows, &want,
                    "rows diverged under transient faults: seed={} threads={}", seed, threads
                );
                prop_assert!(!got.degradation.deadline_exceeded);
                prop_assert_eq!(got.degradation.plans_skipped, 0);
                prop_assert_eq!(got.degradation.plans_incomplete, 0);
                prop_assert!(got.degradation.faults.is_empty());
            }
        }
    }
}

/// With a high transient probability and a 2-page pool the fault layer
/// demonstrably fires — and every error still recovers via bounded
/// retries into the exact fault-free answer.
#[test]
fn transient_faults_fire_and_recover() {
    let want = fig1_with(None, 2)
        .engine()
        .query_all(&["john", "vcr"], 8, cached())
        .unwrap();
    let spec = FaultSpec::new(0xA5A5).rule(FaultKind::TransientRead, FaultTarget::All, 0.9);
    let xk = fig1_with(Some(spec), 2);
    let out = xk
        .engine()
        .query_all(&["john", "vcr"], 8, cached())
        .unwrap();
    assert_eq!(out.results.rows, want.results.rows);
    assert_eq!(out.mttons, want.mttons);
    let s = xk.db.faults().snapshot();
    assert!(s.transient > 0, "p=0.9 must inject transient errors: {s:?}");
    assert!(s.retries > 0, "recovery must spend retries: {s:?}");
    assert_eq!(s.quarantined, 0, "transient faults never quarantine");
}

/// Bit flips in heap and clustered (index-organized) pages surface as
/// [`StoreError::CorruptPage`] naming table and page — on scans and on
/// probes, with the page quarantined after retries are exhausted.
#[test]
fn corruption_is_never_silent_at_the_store() {
    let rows: Vec<Row> = (0..2000u32)
        .map(|i| vec![i % 50, i, i * 7].into())
        .collect();
    let db = Db::new(2);
    let heap = db.create_table("faulty_heap", 3, rows.clone(), PhysicalOptions::heap());
    let clustered = db.create_table(
        "faulty_clustered",
        3,
        rows,
        PhysicalOptions::clustered(&[0]),
    );
    for t in [&heap, &clustered] {
        let first = t.first_page().unwrap();
        db.disk().corrupt_page(first);
        let err = db.try_scan_all(t).unwrap_err();
        match &err {
            StoreError::CorruptPage { table, page } => {
                assert_eq!(table, t.name());
                assert_eq!(*page, first.0);
            }
            other => panic!(
                "scan of {} must report CorruptPage, got {other:?}",
                t.name()
            ),
        }
        let err = db.try_probe(t, &[0], &[7]).unwrap_err();
        assert!(
            matches!(&err, StoreError::CorruptPage { page, .. } if *page == first.0),
            "probe of {} must report CorruptPage naming page {}, got {err:?}",
            t.name(),
            first.0
        );
    }
    let s = db.faults().snapshot();
    assert!(s.checksum_failures > 0, "corruption must be caught: {s:?}");
    assert!(s.quarantined >= 2, "both corrupt pages quarantine: {s:?}");
    // Quarantined pages fail fast — no further retries are spent.
    let retries_before = db.faults().snapshot().retries;
    assert!(db.try_scan_all(&heap).is_err());
    assert_eq!(db.faults().snapshot().retries, retries_before);
}

/// Through the whole query path, a corrupted page produces either a
/// typed [`XkError::Store`] error or a degraded result whose fault
/// report names the corrupt page — and any rows that do come back are
/// a subset of the fault-free answer, never invented.
#[test]
fn corruption_degrades_queries_without_wrong_rows() {
    let want = fig1_with(None, 2)
        .engine()
        .query_all(&["john", "vcr"], 8, cached())
        .unwrap();
    let xk = fig1_with(None, 2);
    let mut corrupted = Vec::new();
    for name in xk.db.table_names() {
        let table = xk.db.table(&name).unwrap();
        if let Some(first) = table.first_page() {
            xk.db.disk().corrupt_page(first);
            corrupted.push(first.0);
        }
    }
    assert!(!corrupted.is_empty(), "Figure 1 must materialize tables");
    match xk.engine().query_all(&["john", "vcr"], 8, cached()) {
        Err(XkError::Store(StoreError::CorruptPage { page, .. })) => {
            assert!(corrupted.contains(&page), "error names a corrupted page");
        }
        Err(other) => panic!("expected CorruptPage, got {other:?}"),
        Ok(out) => {
            let deg = &out.results.degradation;
            assert!(
                deg.is_degraded() && !deg.faults.is_empty(),
                "partial answers under corruption must carry a fault report"
            );
            for (_, e) in &deg.faults {
                assert!(
                    matches!(e, StoreError::CorruptPage { page, .. } if corrupted.contains(page)),
                    "every reported fault names a corrupted page, got {e:?}"
                );
            }
            for row in &out.results.rows {
                assert!(
                    want.results.rows.contains(row),
                    "degraded results must be a subset of the true answer"
                );
            }
        }
    }
}

/// A tight deadline against pervasive slow-page faults comes back —
/// degraded or as a typed timeout — within 2× the deadline, and the
/// degradation report agrees with the engine's published metrics.
#[test]
fn deadline_returns_degraded_partial_within_budget() {
    let xk = fig1_with(None, 2);
    // Installed after load so the stalls only tax the query path.
    xk.db
        .install_faults(FaultSpec::new(0x5EED).slow(FaultTarget::All, 1.0, 100_000_000));
    xkeyword::obs::set_enabled(true);
    let reg = xkeyword::obs::global();
    let skipped_before = reg.counter("xkw_plans_skipped_total").get();
    let degraded_before = reg.counter("xkw_queries_degraded_total").get();

    let deadline = Duration::from_millis(250);
    let t0 = Instant::now();
    let res = xk
        .engine()
        .query_all_within(&["john", "vcr"], 8, cached(), Some(deadline));
    let elapsed = t0.elapsed();
    assert!(
        elapsed <= deadline * 2,
        "deadline {deadline:?} must bound the query, took {elapsed:?}"
    );
    match res {
        Ok(out) => {
            let deg = &out.results.degradation;
            assert!(deg.deadline_exceeded, "slow pages must trip the deadline");
            assert!(
                deg.plans_skipped > 0 || deg.plans_incomplete > 0,
                "100ms stalls cannot finish 14 plans in 250ms: {deg:?}"
            );
            let skipped_delta = reg.counter("xkw_plans_skipped_total").get() - skipped_before;
            assert_eq!(
                skipped_delta as usize, deg.plans_skipped,
                "published skipped-plan counter must match the report"
            );
            assert_eq!(
                reg.counter("xkw_queries_degraded_total").get() - degraded_before,
                1
            );
        }
        // Nothing produced in time is also a honored deadline.
        Err(XkError::DeadlineExceeded) => {}
        Err(other) => panic!("expected degraded result or DeadlineExceeded, got {other:?}"),
    }
}
