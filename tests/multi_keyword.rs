//! Queries with more than two keywords: the §3.1 semantics and the
//! generator/execution pipeline are defined for any m ≤ 16; the paper's
//! evaluation uses m = 2, so this suite guards the general case.
//!
//! With ≥ 3 keywords, candidate networks stop being paths (a result can
//! be a star joining three keyword leaves), exercising the branching
//! cases of the CN pruning rules and of the tiling optimizer.

use xkeyword::core::exec::ExecMode;
use xkeyword::core::prelude::*;
use xkeyword::core::semantics::enumerate_mttons;
use xkeyword::core::xkeyword::DecompositionSpec;
use xkeyword::datagen::tpch;

fn load(spec: DecompositionSpec) -> XKeyword {
    let (graph, _, _) = tpch::figure1();
    XKeyword::load(
        graph,
        tpch::tss_graph(),
        LoadOptions {
            decomposition: spec,
            ..LoadOptions::default()
        },
    )
    .unwrap()
}

#[test]
fn three_keywords_match_oracle() {
    for spec in [
        DecompositionSpec::Minimal,
        DecompositionSpec::XKeyword { m: 6, b: 2 },
    ] {
        let xk = load(spec);
        for kws in [
            ["john", "mike", "vcr"],
            ["us", "tv", "vcr"],
            ["john", "us", "dvd"],
        ] {
            let got = xk
                .query_all(&kws, 8, ExecMode::Cached { capacity: 4096 })
                .mttons();
            let want = enumerate_mttons(&xk.graph(), &xk.targets(), &kws, 8);
            assert_eq!(got, want, "{kws:?}");
        }
    }
}

#[test]
fn three_keyword_cns_include_stars() {
    // On DBLP, "surname + surname + year" branches: a paper with two
    // authors inside a given year is a star at the Paper role (Year +
    // two Authors). Three annotated leaves cannot lie on one path unless
    // one annotation is internal.
    // Tiny instance: the brute-force oracle below is exponential in the
    // citation fan-out.
    let data = xkeyword::datagen::dblp::DblpConfig {
        conferences: 2,
        years_per_conference: 2,
        papers_per_year: 4,
        authors: 8,
        authors_per_paper: 3,
        citations_per_paper: 1,
        vocabulary: 30,
        seed: 5,
    }
    .generate();
    let xk = XKeyword::load(data.graph, data.tss, LoadOptions::default()).unwrap();
    // Find a co-authored paper and its year value.
    let paper_seg = xk
        .tss
        .node_ids()
        .find(|&i| xk.tss.node(i).name == "Paper")
        .unwrap();
    let (a, b) = xk
        .targets()
        .tos_of(paper_seg)
        .iter()
        .find_map(|&p| {
            let authors: Vec<_> = xk
                .targets()
                .edges_out(p)
                .iter()
                .filter(|(e, _)| xk.tss.node(xk.tss.edge(*e).to).name == "Author")
                .map(|&(_, a)| a)
                .collect();
            if authors.len() < 2 {
                return None;
            }
            let surname = |t| {
                xk.label(t)
                    .split_whitespace()
                    .last()
                    .unwrap()
                    .trim_end_matches(']')
                    .to_owned()
            };
            let (sa, sb) = (surname(authors[0]), surname(authors[1]));
            (sa != sb).then_some((sa, sb))
        })
        .expect("a co-authored paper");
    let kws = [a.as_str(), b.as_str(), "1998"];
    let plans = xk.plans(&kws, 6);
    assert!(!plans.is_empty());
    let branching = plans
        .iter()
        .any(|p| (0..p.role_count() as u8).any(|r| p.ctssn.tree.incident(r).count() >= 3));
    assert!(branching, "some CN should branch for 3 keywords");
    // All plans cover all three keywords exactly once.
    for p in &plans {
        let mut covered = 0u16;
        for (_, reqs) in p.ctssn.annotated_roles() {
            for r in reqs {
                assert_eq!(covered & r.set, 0, "keyword used twice");
                covered |= r.set;
            }
        }
        assert_eq!(covered, 0b111);
    }
    // And the branching plans actually execute correctly.
    let got = xk
        .query_all(&kws, 6, ExecMode::Cached { capacity: 4096 })
        .mttons();
    let want = enumerate_mttons(&xk.graph(), &xk.targets(), &kws, 6);
    assert_eq!(got, want);
}

#[test]
fn four_keywords_single_result_shape() {
    // All four keywords of the product description sentence plus its
    // supplier: "set", "dvd", "vcr" are in one node; "john" nearby.
    let xk = load(DecompositionSpec::Minimal);
    let kws = ["set", "dvd", "vcr", "john"];
    let got = xk
        .query_all(&kws, 8, ExecMode::Cached { capacity: 4096 })
        .mttons();
    let want = enumerate_mttons(&xk.graph(), &xk.targets(), &kws, 8);
    assert_eq!(got, want);
    // Best result: the descr node holds {set, dvd, vcr}; John connects
    // through the supplier chain — same shape as the size-6 two-keyword
    // result.
    assert_eq!(got.iter().map(|m| m.score).min(), Some(6));
}

#[test]
fn oracle_agreement_on_random_data_three_keywords() {
    let data = tpch::TpchConfig {
        persons: 5,
        orders_per_person: 2,
        lineitems_per_order: 2,
        parts: 6,
        subparts_per_part: 1,
        product_line_pct: 50,
        service_calls_per_person: 1,
        seed: 31,
    }
    .generate();
    let xk = XKeyword::load(data.graph, data.tss, LoadOptions::default()).unwrap();
    // Pick three value tokens present in the data.
    let graph = xk.graph();
    let mut toks: Vec<String> = graph
        .node_ids()
        .filter_map(|n| graph.value(n))
        .flat_map(xkeyword::graph::graph::tokenize)
        .filter(|t| t.chars().any(|c| c.is_alphabetic()))
        .collect();
    toks.sort();
    toks.dedup();
    assert!(toks.len() >= 3);
    let kws = [
        toks[0].as_str(),
        toks[toks.len() / 2].as_str(),
        toks[toks.len() - 1].as_str(),
    ];
    let got = xk
        .query_all(&kws, 6, ExecMode::Cached { capacity: 4096 })
        .mttons();
    let want = enumerate_mttons(&xk.graph(), &xk.targets(), &kws, 6);
    assert_eq!(got, want, "{kws:?}");
}
