//! Robustness of the hand-written XML parser: arbitrary input must never
//! panic (only `Ok`/`Err`), structurally valid documents built from
//! random trees must round-trip, and common malformations are rejected
//! with positions.

use proptest::prelude::*;
use xkeyword::graph::{parse, writer, EdgeKind, XmlGraph};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Total function: random bytes-ish strings never panic the parser.
    #[test]
    fn never_panics_on_arbitrary_input(s in "\\PC{0,200}") {
        let _ = parse(&s);
    }

    /// Random XML-ish soup built from the parser's own token vocabulary.
    #[test]
    fn never_panics_on_xmlish_soup(parts in prop::collection::vec(
        prop::sample::select(vec![
            "<a>", "</a>", "<b/>", "<!--x-->", "<![CDATA[y]]>", "&amp;",
            "&#65;", "text", "<?pi?>", "<c id=\"i\">", "idref=\"i\"",
            "<", ">", "\"", "&", "]]>", "--><",
        ]),
        0..30,
    )) {
        let s: String = parts.concat();
        let _ = parse(&s);
    }

    /// Random labeled trees with values and references round-trip through
    /// writer + parser with all counts preserved.
    #[test]
    fn random_trees_round_trip(
        shape in prop::collection::vec((0usize..8, 0usize..5, any::<bool>()), 1..40),
        refs in prop::collection::vec((0usize..40, 0usize..40), 0..10),
    ) {
        let tags = ["alpha", "beta", "gamma", "delta", "eps", "zeta", "eta", "theta"];
        let mut g = XmlGraph::new();
        let mut nodes = Vec::new();
        for (i, &(tag, parent, valued)) in shape.iter().enumerate() {
            let value = valued.then(|| format!("v{i} text"));
            let n = g.add_node(tags[tag], value.as_deref());
            if i > 0 {
                let p = nodes[parent % nodes.len()];
                g.add_edge(p, n, EdgeKind::Containment);
            }
            nodes.push(n);
        }
        for &(a, b) in &refs {
            let (a, b) = (nodes[a % nodes.len()], nodes[b % nodes.len()]);
            g.add_edge(a, b, EdgeKind::Reference);
        }
        let text = writer::write_graph(&g);
        let back = parse(&text).unwrap();
        prop_assert_eq!(back.node_count(), g.node_count());
        prop_assert_eq!(back.edge_count(), g.edge_count());
        // Value multiset preserved.
        let values = |g: &XmlGraph| {
            let mut v: Vec<String> = g
                .node_ids()
                .filter_map(|n| g.value(n).map(str::to_owned))
                .collect();
            v.sort();
            v
        };
        prop_assert_eq!(values(&back), values(&g));
    }
}

#[test]
fn malformations_are_rejected_with_positions() {
    for bad in [
        "<a><b></a></b>",
        "<a",
        "<a attr></a>",
        "<a>&unknown;</a>",
        "<a idref=\"missing\"/>",
        "<a><!-- unterminated</a>",
        "<a><![CDATA[open</a>",
    ] {
        let err = parse(bad).expect_err(bad);
        assert!(err.at <= bad.len(), "{bad}: position out of range");
        assert!(!err.msg.is_empty());
    }
}
