//! End-to-end serving suite: a real `xkw-serve` server on a localhost
//! socket, driven over the wire. The contracts pinned here:
//!
//! 1. **Byte-identity** — served rows equal in-process evaluation
//!    exactly (same rows, same order) at 1/2/8 engine worker threads ×
//!    both postings formats, on the top-k and the full-evaluation
//!    paths. The network layer adds transport, never nondeterminism.
//! 2. **Pagination** — pages walked via `next_offset` concatenate to
//!    the single-shot result, over the stable (deterministic) order;
//!    an offset past the end is an empty page, not an error.
//! 3. **Degradation fidelity** — a degraded response's report equals
//!    the counters the server publishes (`xkw_server_degraded_total`,
//!    `..plans_skipped..`, `..plans_incomplete..`, `..query_faults..`).
//! 4. **Protocol robustness** — every frame type round-trips through
//!    encode/decode (proptest), and a malformed-frame corpus (truncated
//!    header, bad magic/version/kind, oversized length, garbage
//!    payload, random bytes) gets a typed protocol error or a clean
//!    close — never a panic, never a hang (every read is under a
//!    timeout, and the server still answers a fresh connection after
//!    the whole corpus).
//! 5. **Overload** — an open-loop run at 2× measured capacity against
//!    a max-inflight-1 server sheds with typed `Overloaded` responses
//!    only: the harness's sequence-id loss accounting closes exactly,
//!    and reconciles with `xkw_server_shed_total` / the in-flight
//!    gauges.

use proptest::prelude::*;
use std::io::Write as _;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;
use xkeyword::core::exec::{Degradation, ExecMode, ResultRow};
use xkeyword::core::prelude::*;
use xkeyword::core::xkeyword::DecompositionSpec;
use xkeyword::datagen::tpch;
use xkeyword::serve::proto::{self, Frame, FrameKind, HEADER_LEN, MAGIC, VERSION};
use xkeyword::serve::{
    start, Client, ClientError, ErrorCode, QueryOutcome, QueryRequest, QueryResponse, ServerConfig,
    StatsResponse, WireDegradation, WireMetrics, WireRow,
};
use xkeyword::store::{FaultSpec, FaultTarget};
use xkw_bench::loadgen::{self, QueryMix, RequestSpec};

/// The cache mode the server evaluates with (its default capacity).
fn cached() -> ExecMode {
    ExecMode::Cached { capacity: 8192 }
}

fn fig1(postings: PostingsFormatKind) -> Arc<XKeyword> {
    let (graph, _, _) = tpch::figure1();
    Arc::new(
        XKeyword::load(
            graph,
            tpch::tss_graph(),
            LoadOptions {
                decomposition: DecompositionSpec::XKeyword { m: 6, b: 2 },
                postings_format: postings,
                ..LoadOptions::default()
            },
        )
        .unwrap(),
    )
}

const QUERIES: [&[&str]; 3] = [&["john", "vcr"], &["us", "vcr"], &["john", "us"]];

fn request(keywords: &[&str], k: u32) -> QueryRequest {
    QueryRequest {
        z: 8,
        k,
        keywords: keywords.iter().map(|s| s.to_string()).collect(),
        ..QueryRequest::default()
    }
}

/// Asserts served rows mirror in-process rows exactly — same order,
/// same plan index, same assignment, same score.
fn assert_rows_match(got: &[WireRow], want: &[ResultRow], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: row count");
    for (g, w) in got.iter().zip(want) {
        assert_eq!(g.plan as usize, w.plan, "{ctx}: plan index");
        assert_eq!(g.score as usize, w.score, "{ctx}: score");
        assert_eq!(g.assignment, w.assignment, "{ctx}: assignment");
    }
}

/// Served responses are byte-identical to in-process evaluation across
/// 1/2/8 worker threads × both postings formats, on both the top-k and
/// the full path.
#[test]
fn served_rows_byte_identical_to_in_process() {
    for postings in [PostingsFormatKind::Raw, PostingsFormatKind::Packed] {
        let xk = fig1(postings);
        for threads in [1usize, 2, 8] {
            let mut srv = start(
                Arc::clone(&xk),
                "127.0.0.1:0",
                ServerConfig {
                    exec_threads: threads,
                    ..ServerConfig::default()
                },
            )
            .unwrap();
            let mut client = Client::connect(srv.addr()).unwrap();
            for kws in QUERIES {
                let ctx = format!("{kws:?} postings={postings:?} threads={threads}");
                // Full evaluation (k = 0 on the wire).
                let want = xk
                    .engine()
                    .query_all_within(kws, 8, cached(), None)
                    .unwrap();
                match client.query(&request(kws, 0)).unwrap() {
                    QueryOutcome::Results(r) => {
                        assert_eq!(r.total_rows as usize, want.results.rows.len(), "{ctx}");
                        assert!(!r.degradation.is_degraded(), "{ctx}: spurious degradation");
                        assert_rows_match(&r.rows, &want.results.rows, &ctx);
                    }
                    QueryOutcome::Error(e) => panic!("{ctx}: unexpected error {e:?}"),
                }
                // Top-k path.
                for k in [1usize, 3, 10] {
                    let want = xk
                        .engine()
                        .query_topk_opts(kws, 8, k, cached(), threads, None, true)
                        .unwrap();
                    match client.query(&request(kws, k as u32)).unwrap() {
                        QueryOutcome::Results(r) => {
                            assert_rows_match(&r.rows, &want.results.rows, &format!("{ctx} k={k}"));
                        }
                        QueryOutcome::Error(e) => panic!("{ctx} k={k}: unexpected error {e:?}"),
                    }
                }
            }
            srv.shutdown();
        }
    }
}

/// Pages follow `next_offset` over the stable result order and
/// concatenate to the single-shot answer; out-of-range offsets are
/// empty pages.
#[test]
fn pagination_walks_the_stable_order() {
    let xk = fig1(PostingsFormatKind::Raw);
    let mut srv = start(Arc::clone(&xk), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = Client::connect(srv.addr()).unwrap();

    let full = match client.query(&request(&["john", "vcr"], 0)).unwrap() {
        QueryOutcome::Results(r) => r,
        QueryOutcome::Error(e) => panic!("unexpected error {e:?}"),
    };
    assert!(full.next_offset.is_none(), "one page fits the default max");
    assert!(
        full.total_rows >= 3,
        "pagination needs a few rows to be meaningful, got {}",
        full.total_rows
    );

    // Walk in pages of 2.
    let mut req = request(&["john", "vcr"], 0);
    req.page_size = 2;
    let mut rows = Vec::new();
    let mut pages = 0u32;
    loop {
        let page = match client.query(&req).unwrap() {
            QueryOutcome::Results(r) => r,
            QueryOutcome::Error(e) => panic!("unexpected error {e:?}"),
        };
        assert_eq!(
            page.total_rows, full.total_rows,
            "total stable across pages"
        );
        assert_eq!(page.offset, req.offset, "offset echoed");
        assert!(page.rows.len() <= 2, "page size respected");
        rows.extend(page.rows);
        pages += 1;
        match page.next_offset {
            Some(off) => {
                assert_eq!(off as usize, rows.len(), "continuation is contiguous");
                req.offset = off;
            }
            None => break,
        }
    }
    assert_eq!(rows, full.rows, "pages concatenate to the one-shot answer");
    assert_eq!(
        pages,
        full.total_rows.div_ceil(2),
        "no empty mid-walk pages"
    );

    // The convenience walker agrees.
    let mut req = request(&["john", "vcr"], 0);
    req.page_size = 2;
    match client.query_all_pages(&req).unwrap() {
        QueryOutcome::Results(r) => assert_eq!(r.rows, full.rows),
        QueryOutcome::Error(e) => panic!("unexpected error {e:?}"),
    }

    // Past the end: an empty final page, not an error.
    let mut req = request(&["john", "vcr"], 0);
    req.offset = full.total_rows + 5;
    match client.query(&req).unwrap() {
        QueryOutcome::Results(r) => {
            assert!(r.rows.is_empty());
            assert!(r.next_offset.is_none());
            assert_eq!(r.total_rows, full.total_rows);
        }
        QueryOutcome::Error(e) => panic!("unexpected error {e:?}"),
    }
    srv.shutdown();
}

/// A degraded response's report equals the counters the server
/// publishes — the wire never understates what was lost.
#[test]
fn degraded_responses_match_published_counters() {
    let (graph, _, _) = tpch::figure1();
    let xk = XKeyword::load(
        graph,
        tpch::tss_graph(),
        LoadOptions {
            decomposition: DecompositionSpec::XKeyword { m: 6, b: 2 },
            pool_pages: 2,
            ..LoadOptions::default()
        },
    )
    .unwrap();
    // Installed after load so the stalls only tax the query path:
    // 100ms per faulted page read against a 250ms deadline cannot
    // finish Figure 1's plans.
    xk.db
        .install_faults(FaultSpec::new(0x5EED).slow(FaultTarget::All, 1.0, 100_000_000));
    let mut srv = start(Arc::new(xk), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = Client::connect(srv.addr()).unwrap();

    let mut req = request(&["john", "vcr"], 0);
    req.deadline_ms = 250;
    match client.query(&req).unwrap() {
        QueryOutcome::Results(r) => {
            let d = &r.degradation;
            assert!(d.deadline_exceeded, "slow pages must trip the deadline");
            assert!(d.is_degraded());
            let s = client.stats().unwrap();
            assert_eq!(s.degraded, 1, "one degraded response served");
            assert_eq!(s.plans_skipped, u64::from(d.plans_skipped));
            assert_eq!(s.plans_incomplete, u64::from(d.plans_incomplete));
            assert_eq!(s.query_faults, u64::from(d.faults));
            assert_eq!(s.responses, 1);
        }
        // Nothing produced in time is also a honored deadline — then it
        // is a typed error and counted as such, not silently dropped.
        QueryOutcome::Error(e) => {
            assert_eq!(e.code, ErrorCode::DeadlineExceeded, "{e:?}");
            let s = client.stats().unwrap();
            assert_eq!(s.request_errors, 1);
            assert_eq!(s.degraded, 0);
        }
    }
    srv.shutdown();
}

/// Session budgets: once a connection's cumulative evaluation budget is
/// spent, further queries get a typed `BudgetExhausted` — and a fresh
/// connection (fresh session) evaluates again.
#[test]
fn session_budget_exhausts_per_connection() {
    let xk = fig1(PostingsFormatKind::Raw);
    xk.catalog().set_roundtrip(Duration::from_micros(500));
    let mut srv = start(
        Arc::clone(&xk),
        "127.0.0.1:0",
        ServerConfig {
            session_budget: Some(Duration::from_millis(1)),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(srv.addr()).unwrap();
    // Burn the 1ms budget (the first query is admitted: budget is
    // checked before evaluation, charged after).
    let mut exhausted = false;
    for _ in 0..10 {
        match client.query(&request(&["john", "vcr"], 0)).unwrap() {
            QueryOutcome::Results(_) => {}
            QueryOutcome::Error(e) => {
                assert_eq!(e.code, ErrorCode::BudgetExhausted, "{e:?}");
                exhausted = true;
                break;
            }
        }
    }
    assert!(exhausted, "a 1ms budget must not survive 10 queries");
    // A new connection is a new session with a fresh budget.
    let mut fresh = Client::connect(srv.addr()).unwrap();
    match fresh.query(&request(&["john", "vcr"], 0)).unwrap() {
        QueryOutcome::Results(_) => {}
        QueryOutcome::Error(e) => panic!("fresh session must evaluate, got {e:?}"),
    }
    srv.shutdown();
}

/// Warm plan-cache sharing: a query planned on one connection is a
/// plan-cache hit on another.
#[test]
fn plan_cache_is_shared_across_sessions() {
    let xk = fig1(PostingsFormatKind::Raw);
    let mut srv = start(Arc::clone(&xk), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut first = Client::connect(srv.addr()).unwrap();
    match first.query(&request(&["john", "vcr"], 0)).unwrap() {
        QueryOutcome::Results(r) => assert!(!r.metrics.plan_cache_hit, "first planning is cold"),
        QueryOutcome::Error(e) => panic!("unexpected error {e:?}"),
    }
    let mut second = Client::connect(srv.addr()).unwrap();
    match second.query(&request(&["john", "vcr"], 0)).unwrap() {
        QueryOutcome::Results(r) => assert!(
            r.metrics.plan_cache_hit,
            "second session must hit the shared plan cache"
        ),
        QueryOutcome::Error(e) => panic!("unexpected error {e:?}"),
    }
    srv.shutdown();
}

// ---- protocol round-trip proptests ----------------------------------

const ALL_CODES: [ErrorCode; 10] = [
    ErrorCode::Protocol,
    ErrorCode::BadRequest,
    ErrorCode::UnknownKeyword,
    ErrorCode::Overloaded,
    ErrorCode::QuotaExceeded,
    ErrorCode::BudgetExhausted,
    ErrorCode::DeadlineExceeded,
    ErrorCode::Store,
    ErrorCode::Internal,
    ErrorCode::ShuttingDown,
];

/// A full-domain frame generator covering every frame kind (the shim's
/// `Strategy` trait is implemented directly — it has no combinators).
struct ArbFrame;

impl proptest::strategy::Strategy for ArbFrame {
    type Value = Frame;

    fn generate(&self, rng: &mut proptest::test_runner::TestRng) -> Frame {
        match rng.below(7) {
            0 => Frame::Query(QueryRequest {
                id: rng.next_u64(),
                z: rng.next_u64() as u16,
                k: rng.next_u64() as u32,
                deadline_ms: rng.next_u64() as u32,
                offset: rng.next_u64() as u32,
                page_size: rng.next_u64() as u32,
                // Only defined flag bits survive the strict decoder.
                flags: rng.below(4) as u8,
                keywords: (0..rng.below(5))
                    .map(|_| format!("kw{}", rng.next_u64() as u16))
                    .collect(),
            }),
            1 => Frame::Results(QueryResponse {
                id: rng.next_u64(),
                total_rows: rng.next_u64() as u32,
                offset: rng.next_u64() as u32,
                // u32::MAX is the wire sentinel for None.
                next_offset: (rng.below(2) == 0).then(|| rng.below(u32::MAX as u64) as u32),
                degradation: WireDegradation {
                    deadline_exceeded: rng.below(2) == 0,
                    plans_skipped: rng.next_u64() as u32,
                    plans_incomplete: rng.next_u64() as u32,
                    faults: rng.next_u64() as u32,
                    retries: rng.next_u64(),
                },
                metrics: WireMetrics {
                    total_ns: rng.next_u64(),
                    exec_ns: rng.next_u64(),
                    io_hits: rng.next_u64(),
                    io_misses: rng.next_u64(),
                    plans: rng.next_u64() as u32,
                    plan_cache_hit: rng.below(2) == 0,
                },
                rows: (0..rng.below(8))
                    .map(|_| WireRow {
                        plan: rng.next_u64() as u32,
                        score: rng.next_u64() as u32,
                        assignment: (0..rng.below(6)).map(|_| rng.next_u64() as u32).collect(),
                    })
                    .collect(),
            }),
            2 => Frame::Error(xkeyword::serve::ErrorResponse {
                id: rng.next_u64(),
                code: ALL_CODES[rng.below(ALL_CODES.len() as u64) as usize],
                retry_after_ms: rng.next_u64() as u32,
                message: format!("error detail {}", rng.next_u64() as u16),
            }),
            3 => Frame::StatsRequest,
            4 => Frame::Stats(Box::new(StatsResponse {
                connections: rng.next_u64(),
                connections_rejected: rng.next_u64(),
                requests: rng.next_u64(),
                responses: rng.next_u64(),
                shed: rng.next_u64(),
                quota_shed: rng.next_u64(),
                protocol_errors: rng.next_u64(),
                request_errors: rng.next_u64(),
                inflight: rng.next_u64() as u32,
                inflight_peak: rng.next_u64() as u32,
                engine_queries: rng.next_u64(),
                engine_errors: rng.next_u64(),
                engine_plan_cache_hits: rng.next_u64(),
                degraded: rng.next_u64(),
                plans_skipped: rng.next_u64(),
                plans_incomplete: rng.next_u64(),
                query_faults: rng.next_u64(),
            })),
            5 => Frame::Ping(rng.next_u64()),
            _ => Frame::Pong(rng.next_u64()),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every frame type survives encode → read_frame unchanged.
    #[test]
    fn every_frame_round_trips(frame in ArbFrame) {
        let bytes = proto::encode_frame(&frame);
        let mut r = &bytes[..];
        let got = proto::read_frame(&mut r, proto::DEFAULT_MAX_FRAME)
            .expect("encoded frames decode")
            .expect("not EOF");
        prop_assert_eq!(got, frame);
        prop_assert!(r.is_empty(), "decode consumed the whole frame");
    }

    /// Any truncation of a valid frame is a typed error (or a clean
    /// EOF at offset 0) — never a panic, never trailing acceptance.
    #[test]
    fn truncated_frames_are_typed_errors(frame in ArbFrame, cut in any::<u16>()) {
        let bytes = proto::encode_frame(&frame);
        let cut = cut as usize % bytes.len().max(1);
        let mut r = &bytes[..cut];
        match proto::read_frame(&mut r, proto::DEFAULT_MAX_FRAME) {
            Ok(None) => prop_assert_eq!(cut, 0, "clean EOF only at a frame boundary"),
            Ok(Some(_)) => prop_assert!(false, "truncated frame decoded"),
            Err(_) => {} // typed error: truncation is Io or Wire
        }
    }
}

// ---- malformed-frame fuzz against a live server ---------------------

/// Sends raw bytes on a fresh connection, half-closes, and returns what
/// the server did: `Some(code)` for a typed error, `None` for a clean
/// close. Panics on a hang (read timeout) or garbage reply.
fn poke(addr: std::net::SocketAddr, bytes: &[u8]) -> Option<ErrorCode> {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(bytes).unwrap();
    // Half-close so a server waiting for more header/payload bytes sees
    // EOF instead of blocking until its read timeout.
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    match proto::read_frame(&mut stream, proto::DEFAULT_MAX_FRAME) {
        Ok(Some(Frame::Error(e))) => Some(e.code),
        Ok(Some(f)) => panic!("server answered garbage with {:?}", f.kind()),
        Ok(None) => None,
        Err(proto::ReadFrameError::Io(e))
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) =>
        {
            panic!("server hung on malformed input {bytes:?}")
        }
        // A reset instead of a FIN is still a close, not a hang.
        Err(_) => None,
    }
}

fn header(version: u8, kind: u8, len: u32) -> Vec<u8> {
    let mut h = Vec::with_capacity(HEADER_LEN);
    h.extend_from_slice(&MAGIC);
    h.push(version);
    h.push(kind);
    h.extend_from_slice(&len.to_le_bytes());
    h
}

/// The malformed-frame corpus: typed protocol error or clean close for
/// every entry, and the server still serves a fresh connection after.
#[test]
fn malformed_frames_never_hang_or_kill_the_server() {
    let xk = fig1(PostingsFormatKind::Raw);
    let mut srv = start(Arc::clone(&xk), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = srv.addr();

    // Truncated headers: EOF mid-header is a clean close (nothing to
    // reply to), not a hang.
    for cut in [1, 2, 5, 7] {
        let h = header(VERSION, 1, 0);
        assert_eq!(poke(addr, &h[..cut]), None, "truncated header len {cut}");
    }
    // Bad magic, bad version, bad kind, oversized length: typed errors.
    let mut bad_magic = header(VERSION, 1, 0);
    bad_magic[0] = b'Z';
    for (name, frame) in [
        ("bad magic", bad_magic),
        ("bad version", header(9, 1, 0)),
        ("bad kind", header(VERSION, 99, 0)),
        ("oversized length", header(VERSION, 1, u32::MAX)),
    ] {
        assert_eq!(
            poke(addr, &frame),
            Some(ErrorCode::Protocol),
            "{name} must get a typed protocol error"
        );
    }
    // Garbage payload under a valid Query header.
    let mut garbage = header(VERSION, 1, 8);
    garbage.extend_from_slice(&[0xFF; 8]);
    assert_eq!(
        poke(addr, &garbage),
        Some(ErrorCode::Protocol),
        "garbage payload"
    );
    // Truncated payload: header promises 64 bytes, connection ends
    // after 3 — clean close.
    let mut truncated = header(VERSION, 1, 64);
    truncated.extend_from_slice(&[1, 2, 3]);
    assert_eq!(poke(addr, &truncated), None, "truncated payload");
    // A server-only frame kind from a client is a protocol error.
    let results = proto::encode_frame(&Frame::Results(QueryResponse::default()));
    assert_eq!(
        poke(addr, &results),
        Some(ErrorCode::Protocol),
        "server-only kind from client"
    );

    // The server survived the whole corpus: a fresh connection still
    // answers queries, and every corpus entry above was counted.
    let mut client = Client::connect(addr).unwrap();
    assert_eq!(client.ping(7).unwrap(), 7, "server must still be alive");
    match client.query(&request(&["john", "vcr"], 0)).unwrap() {
        QueryOutcome::Results(r) => assert!(r.total_rows > 0),
        QueryOutcome::Error(e) => panic!("post-corpus query failed: {e:?}"),
    }
    let s = client.stats().unwrap();
    assert_eq!(
        s.protocol_errors, 6,
        "every malformed frame with a decodable fault must be counted"
    );
    srv.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random byte salvos never hang or wedge the server: each gets a
    /// typed protocol error or a clean close within the read timeout.
    #[test]
    fn random_bytes_never_hang_the_server(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        // One shared server across cases would also work, but a fresh
        // one isolates failures to the offending input.
        static SERVER: std::sync::OnceLock<(xkeyword::serve::ServerHandle, std::net::SocketAddr)> =
            std::sync::OnceLock::new();
        let (_, addr) = SERVER.get_or_init(|| {
            let srv = start(fig1(PostingsFormatKind::Raw), "127.0.0.1:0", ServerConfig::default())
                .unwrap();
            let addr = srv.addr();
            (srv, addr)
        });
        let _ = poke(*addr, &bytes); // panics on hang or garbage reply
        let mut client = Client::connect(*addr).unwrap();
        prop_assert_eq!(client.ping(42).unwrap(), 42);
    }
}

// ---- overload --------------------------------------------------------

/// Open-loop at 2× measured capacity against a max-inflight-1 server:
/// every shed is a typed `Overloaded`, the sequence-id loss accounting
/// closes exactly, and the server's own counters agree with the
/// harness's.
#[test]
fn open_loop_overload_sheds_typed_and_reconciles() {
    let xk = fig1(PostingsFormatKind::Raw);
    // A per-statement round trip so queries cost real time — capacity
    // is finite and 2× capacity genuinely overloads.
    xk.catalog().set_roundtrip(Duration::from_micros(300));
    let mix = QueryMix::fixed(
        QUERIES
            .iter()
            .map(|q| (q[0].to_string(), q[1].to_string()))
            .collect(),
        1.1,
    );
    let spec = RequestSpec {
        k: 5,
        deadline_ms: 5_000, // accepted requests must finish well inside
        ..RequestSpec::default()
    };

    // Measure capacity closed-loop against a roomy server.
    let mut cap_srv = start(
        Arc::clone(&xk),
        "127.0.0.1:0",
        ServerConfig {
            max_inflight: 8,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let closed = loadgen::closed_loop(cap_srv.addr(), &mix, spec, 2, 25, 0xCAFE);
    cap_srv.shutdown();
    assert!(closed.fully_accounted());
    assert_eq!(closed.tally.errors, 0);
    assert_eq!(
        closed.tally.shed, 0,
        "closed loop under the bound never sheds"
    );

    // Overload a tight server at 2× that rate.
    let mut srv = start(
        Arc::clone(&xk),
        "127.0.0.1:0",
        ServerConfig {
            max_inflight: 1,
            admission_wait: Duration::ZERO,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let open = loadgen::open_loop(
        srv.addr(),
        &mix,
        spec,
        closed.goodput_qps * 2.0,
        200,
        6,
        4,
        0xF00D,
    );
    let s = srv.stats();
    srv.shutdown();

    // Loss accounting: ok + shed + errors == sent, ids all echoed.
    assert!(
        open.fully_accounted(),
        "unaccounted requests: {:?}",
        open.tally
    );
    assert_eq!(open.tally.errors, 0, "sheds must be typed, not errors");
    assert!(
        open.tally.shed > 0,
        "2x overload against max_inflight=1 must shed: {:?}",
        open.tally
    );
    assert!(open.tally.ok > 0, "shedding must not starve accepted work");
    // Server counters reconcile with the harness, request for request.
    assert_eq!(s.requests, open.tally.sent, "xkw_server_requests_total");
    assert_eq!(s.responses, open.tally.ok, "xkw_server_responses_total");
    assert_eq!(s.shed, open.tally.shed, "xkw_server_shed_total");
    assert_eq!(s.request_errors, 0);
    // Accepted requests met the deadline-degradation contract: none
    // were degraded (5s deadline, ~ms queries) and the in-flight gauge
    // respected its bound and drained.
    assert_eq!(s.degraded, 0, "accepted requests must meet their deadline");
    assert_eq!(s.inflight, 0, "in-flight gauge must drain to zero");
    assert!(
        s.inflight_peak as usize <= 1,
        "in-flight peak {} exceeded max_inflight=1",
        s.inflight_peak
    );
}

/// Sanity for the core conversion: the wire degradation report mirrors
/// `xkw_core::exec::Degradation` field for field.
#[test]
fn wire_degradation_mirrors_core_semantics() {
    let core = Degradation::default();
    assert!(!core.is_degraded());
    let wire = WireDegradation::default();
    assert!(!wire.is_degraded());
    // Retries alone degrade neither (they cost time, not answers).
    let wire = WireDegradation {
        retries: 5,
        ..WireDegradation::default()
    };
    assert!(!wire.is_degraded());
    for degraded in [
        WireDegradation {
            deadline_exceeded: true,
            ..WireDegradation::default()
        },
        WireDegradation {
            plans_skipped: 1,
            ..WireDegradation::default()
        },
        WireDegradation {
            plans_incomplete: 1,
            ..WireDegradation::default()
        },
        WireDegradation {
            faults: 1,
            ..WireDegradation::default()
        },
    ] {
        assert!(degraded.is_degraded());
    }
}

/// `ClientError` display sanity used by the CLI client mode.
#[test]
fn client_error_kinds_render() {
    let e = ClientError::Closed;
    assert_eq!(e.to_string(), "server closed the connection");
    assert!(matches!(
        ClientError::from(proto::ReadFrameError::Wire(proto::WireError::BadVersion(9))),
        ClientError::Wire(_)
    ));
    let _ = FrameKind::Query; // re-export sanity
}
