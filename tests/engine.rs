//! Integration tests for the shared [`QueryEngine`]: plan-cache behaviour
//! across queries with fresh keywords of a familiar shape, typed error
//! paths on real data, the façade's soft-semantics contract, and a
//! concurrent smoke test of one engine shared across threads.

use std::collections::HashSet;
use xkeyword::core::exec::ExecMode;
use xkeyword::core::prelude::*;
use xkeyword::core::relations::PhysicalPolicy;
use xkeyword::core::xkeyword::DecompositionSpec;
use xkeyword::datagen::dblp::DblpConfig;

fn dblp() -> DblpConfig {
    DblpConfig {
        conferences: 2,
        years_per_conference: 2,
        papers_per_year: 6,
        authors: 12,
        authors_per_paper: 2,
        citations_per_paper: 2,
        vocabulary: 40,
        seed: 21,
    }
}

fn load() -> XKeyword {
    let d = dblp().generate();
    XKeyword::load(
        d.graph,
        d.tss,
        LoadOptions {
            decomposition: DecompositionSpec::XKeyword { m: 4, b: 2 },
            policy: PhysicalPolicy::clustered(),
            pool_pages: 512,
            ..LoadOptions::default()
        },
    )
    .unwrap()
}

/// Picks a keyword pair with guaranteed results: two surnames sharing a
/// paper.
fn coauthor_pair(xk: &XKeyword) -> (String, String) {
    let tss = &xk.tss;
    let paper = tss
        .node_ids()
        .find(|&i| tss.node(i).name == "Paper")
        .unwrap();
    for &p in xk.targets().tos_of(paper) {
        let authors: Vec<_> = xk
            .targets()
            .edges_out(p)
            .iter()
            .filter(|(e, _)| tss.node(tss.edge(*e).to).name == "Author")
            .map(|&(_, a)| a)
            .collect();
        if authors.len() >= 2 {
            let la = xk.label(authors[0]);
            let lb = xk.label(authors[1]);
            let sa = la.split_whitespace().last().unwrap().trim_end_matches(']');
            let sb = lb.split_whitespace().last().unwrap().trim_end_matches(']');
            if sa != sb {
                return (sa.to_owned(), sb.to_owned());
            }
        }
    }
    panic!("no co-authored paper with distinct surnames");
}

/// Author surnames live only in `aname` nodes, so every pair of distinct
/// surnames partitions the schema identically (`aname` → {01, 10}): the
/// second pair — fresh keyword strings never queried before — must hit
/// the plan cache, while a different `z` must miss.
#[test]
fn fresh_keywords_of_known_shape_hit_plan_cache() {
    let xk = load();
    let e = xk.engine();
    // 12 authors → surnames surname0..surname5, each held by 2 authors.
    let cold = e.prepare(&["surname0", "surname1"], 6).unwrap();
    assert!(!cold.plan_cache_hit, "first shape plans cold");
    assert!(!cold.plans.is_empty());

    let warm = e.prepare(&["surname4", "surname5"], 6).unwrap();
    assert!(warm.plan_cache_hit, "distinct surnames, same schema shape");
    assert_eq!(cold.plans.len(), warm.plans.len());

    let other_z = e.prepare(&["surname0", "surname1"], 5).unwrap();
    assert!(!other_z.plan_cache_hit, "z is part of the plan key");
    assert_eq!(e.plan_cache_len(), 2);

    // A shape-changing query: a surname + a title word partitions the
    // schema differently (aname vs title nodes), so it misses.
    let mixed = e.prepare(&["surname2", "w0"], 6).unwrap();
    assert!(!mixed.plan_cache_hit, "surname + title word is a new shape");
    assert_eq!(e.plan_cache_len(), 3);
}

/// Engine errors are values; the façade maps them to empty results.
#[test]
fn typed_errors_and_facade_soft_semantics_agree() {
    let xk = load();
    let e = xk.engine();
    assert_eq!(
        e.query_all(&["florp", "surname0"], 6, ExecMode::Naive)
            .unwrap_err(),
        XkError::UnknownKeyword("florp".to_owned())
    );
    assert_eq!(e.prepare(&[], 6).unwrap_err(), XkError::EmptyQuery);
    assert!(matches!(
        e.query_all(&["surname0"], 6, ExecMode::Cached { capacity: 0 }),
        Err(XkError::BadMode(_))
    ));
    // The façade keeps its historical contract on the same engine.
    assert!(xk
        .query_all(&["florp", "surname0"], 6, ExecMode::Naive)
        .rows
        .is_empty());
    assert!(xk.plans(&["florp"], 6).is_empty());
    let s = e.stats();
    assert!(s.errors >= 4);
}

/// The engine's outcome equals the façade's result set, and its metrics
/// account for the stages and the query's buffer-pool traffic.
#[test]
fn engine_outcome_matches_facade_and_reports_metrics() {
    let xk = load();
    let (a, b) = coauthor_pair(&xk);
    let kws = [a.as_str(), b.as_str()];
    let via_facade = xk
        .query_all(&kws, 6, ExecMode::Cached { capacity: 2048 })
        .mttons();
    let out = xk
        .engine()
        .query_all(&kws, 6, ExecMode::Cached { capacity: 2048 })
        .unwrap();
    assert_eq!(out.mttons, via_facade);
    assert!(!out.mttons.is_empty());
    assert!(out.metrics.plans > 0);
    assert!(
        out.metrics.io_hits + out.metrics.io_misses > 0,
        "probing connection relations must touch the buffer pool"
    );
    assert!(out.metrics.plan_cache_hit, "facade query warmed the cache");
}

/// One engine, many threads: every thread gets the single-threaded
/// reference answer, cumulative stats see every query, and all but the
/// warming query hit the plan cache.
#[test]
fn concurrent_queries_on_shared_engine() {
    const THREADS: usize = 4;
    let xk = load();
    let e = xk.engine();
    let (a, b) = coauthor_pair(&xk);
    let kws = [a.as_str(), b.as_str()];
    let reference = e
        .query_all(&kws, 6, ExecMode::Cached { capacity: 2048 })
        .unwrap()
        .mttons;
    assert!(!reference.is_empty());

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|i| {
                let kws = &kws;
                let reference = &reference;
                s.spawn(move || {
                    // Alternate modes to mix naive and cached execution.
                    let mode = if i % 2 == 0 {
                        ExecMode::Naive
                    } else {
                        ExecMode::Cached { capacity: 2048 }
                    };
                    let out = e.query_all(kws, 6, mode).unwrap();
                    assert_eq!(&out.mttons, reference);
                    assert!(out.metrics.plan_cache_hit);
                    out.metrics.io_hits + out.metrics.io_misses
                })
            })
            .collect();
        let total_io: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(total_io > 0, "per-thread I/O attribution must see traffic");
    });

    let s = e.stats();
    assert_eq!(s.queries, 1 + THREADS as u64);
    assert_eq!(s.plan_cache_misses, 1);
    assert_eq!(s.plan_cache_hits, THREADS as u64);
}

/// Top-k on the shared engine under concurrency: every thread's k results
/// are genuine results.
#[test]
fn concurrent_topk_smoke() {
    let xk = load();
    let e = xk.engine();
    let (a, b) = coauthor_pair(&xk);
    let kws = [a.as_str(), b.as_str()];
    let all = e
        .query_all(&kws, 6, ExecMode::Cached { capacity: 2048 })
        .unwrap();
    let valid: HashSet<Mtton> = all.results.rows.iter().map(|r| r.to_mtton()).collect();
    let k = 3.min(all.results.rows.len());
    assert!(k > 0);

    std::thread::scope(|s| {
        for _ in 0..3 {
            let kws = &kws;
            let valid = &valid;
            s.spawn(move || {
                let top = e
                    .query_topk(kws, 6, k, ExecMode::Cached { capacity: 2048 }, 2)
                    .unwrap();
                assert_eq!(top.results.rows.len(), k);
                for r in &top.results.rows {
                    assert!(valid.contains(&r.to_mtton()));
                }
            });
        }
    });
}

/// The engine type is usable from plain `std::thread` APIs.
#[test]
fn engine_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<QueryEngine>();
    assert_send_sync::<EngineStats>();
    assert_send_sync::<QueryMetrics>();
}
