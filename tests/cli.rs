//! Drives the `xkeyword-cli` and `xkeyword-serve` binaries end to end:
//! malformed flags are rejected up front with a one-line message and
//! exit code 2, query failures in one-shot mode exit nonzero, a healthy
//! query over the built-in Figure 1 document exits 0, and the
//! `--threads`/`--deadline-ms`/`--k` matrix prints byte-identical
//! result rows.

use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_xkeyword-cli"))
        .args(args)
        .output()
        .expect("binary must spawn")
}

fn run_serve(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_xkeyword-serve"))
        .args(args)
        .output()
        .expect("binary must spawn")
}

#[test]
fn malformed_numeric_flags_exit_2_with_a_message() {
    for (flag, value) in [
        ("--z", "bogus"),
        ("--top", "-3"),
        ("--threads", "1.5"),
        ("--pool-shards", ""),
        ("--deadline-ms", "soon"),
        ("--postings", "bogus"),
        ("--k", "bogus"),
        ("--k", "0"),
        ("--k", "-1"),
        ("--k", "2.5"),
        ("--slow-ms", "0"),
        ("--slow-ms", "soon"),
        ("--fsync", "bogus"),
        ("--fsync", "ALWAYS"),
        ("--fsync", ""),
    ] {
        let out = run(&[flag, value]);
        assert_eq!(
            out.status.code(),
            Some(2),
            "{flag} {value:?} must exit 2, got {:?}",
            out.status
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("invalid value") && stderr.contains(flag),
            "{flag}: one-line message must name the flag, got {stderr:?}"
        );
    }
}

#[test]
fn missing_flag_values_and_unknown_flags_exit_2() {
    let out = run(&["--query"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--query needs a value"));

    let out = run(&["--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag --frobnicate"));
}

#[test]
fn malformed_fault_specs_exit_2() {
    let out = run(&["--faults", "transient:p=2.0"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("invalid --faults spec"), "got {stderr:?}");
}

#[test]
fn query_errors_exit_nonzero_in_one_shot_mode() {
    // "zzz_missing" occurs nowhere in Figure 1 — a typed XkError, not a
    // panic, and a nonzero exit.
    let out = run(&["--query", "zzz_missing vcr"]);
    assert_eq!(out.status.code(), Some(1), "query error must exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("query error"), "got {stdout:?}");
    assert!(stdout.contains("zzz_missing"), "message names the keyword");
}

// Drop the per-run wall-clock line ("  stages: ..."); everything else
// is deterministic.
fn result_lines(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout)
        .lines()
        .filter(|l| !l.trim_start().starts_with("stages:"))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn healthy_query_exits_0_and_faulted_query_stays_correct() {
    let clean = run(&["--query", "john vcr"]);
    assert_eq!(clean.status.code(), Some(0), "{:?}", clean.status);
    let clean_out = result_lines(&clean);
    assert!(clean_out.contains("results ("), "got {clean_out:?}");

    // A transient-only fault plan must not change the printed answer.
    let faulted = run(&["--faults", "seed=42;transient:p=0.4", "--query", "john vcr"]);
    assert_eq!(faulted.status.code(), Some(0));
    assert_eq!(
        result_lines(&faulted),
        clean_out,
        "transient faults must not alter one-shot output"
    );
}

/// `--k` result rows with pruning on and off, stripped of the prune
/// accounting line and the probe count (both legitimately differ: a
/// mid-plan threshold abort lands between probes, so the probe total
/// depends on worker interleaving — the byte-identity contract covers
/// the returned rows, result count, and plan count, not the work done).
fn topk_result_rows(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout)
        .lines()
        .filter(|l| {
            let t = l.trim_start();
            !t.starts_with("stages:") && !t.starts_with("top-")
        })
        .map(|l| match l.rsplit_once(", ") {
            Some((head, tail)) if tail.ends_with("probes)") => format!("{head})"),
            _ => l.to_string(),
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn topk_pruning_does_not_change_one_shot_output() {
    for (threads, postings) in [("1", "raw"), ("4", "packed")] {
        let base = &[
            "--query",
            "us vcr",
            "--k",
            "3",
            "--threads",
            threads,
            "--postings",
            postings,
        ];
        let pruned = run(base);
        assert_eq!(pruned.status.code(), Some(0), "{:?}", pruned.status);
        let pruned_out = topk_result_rows(&pruned);
        assert!(pruned_out.contains("results ("), "got {pruned_out:?}");
        let stdout = String::from_utf8_lossy(&pruned.stdout);
        assert!(stdout.contains("top-3:"), "prune accounting line missing");

        let mut unpruned_args = base.to_vec();
        unpruned_args.push("--no-prune");
        let unpruned = run(&unpruned_args);
        assert_eq!(unpruned.status.code(), Some(0));
        assert!(
            String::from_utf8_lossy(&unpruned.stdout).contains("(pruning disabled)"),
            "--no-prune must be reflected in the accounting line"
        );
        assert_eq!(
            topk_result_rows(&unpruned),
            pruned_out,
            "--no-prune must print byte-identical results ({threads} threads, {postings})"
        );
    }
}

/// `--threads` × `--deadline-ms` × `--k` matrix: a generous deadline
/// never degrades, and the printed result rows are byte-identical at
/// every thread count — the CLI surface of the determinism contract.
#[test]
fn threads_deadline_k_matrix_is_byte_identical() {
    let baseline = run(&["--query", "us vcr", "--k", "3", "--threads", "1"]);
    assert_eq!(baseline.status.code(), Some(0), "{:?}", baseline.status);
    let want = topk_result_rows(&baseline);
    assert!(want.contains("results ("), "got {want:?}");
    for threads in ["2", "4", "8"] {
        for deadline in [None, Some("60000")] {
            let mut args = vec!["--query", "us vcr", "--k", "3", "--threads", threads];
            if let Some(ms) = deadline {
                args.extend(["--deadline-ms", ms]);
            }
            let out = run(&args);
            assert_eq!(out.status.code(), Some(0), "{args:?}: {:?}", out.status);
            let stdout = String::from_utf8_lossy(&out.stdout);
            assert!(
                !stdout.contains("DEGRADED"),
                "a 60s deadline must not degrade Figure 1: {args:?}"
            );
            assert_eq!(
                topk_result_rows(&out),
                want,
                "rows diverged at {threads} threads, deadline {deadline:?}"
            );
        }
    }
}

#[test]
fn cli_connect_flag_parses_strictly() {
    for bad in ["not-an-addr", "127.0.0.1", "localhost:99999", ""] {
        let out = run(&["--connect", bad]);
        assert_eq!(out.status.code(), Some(2), "--connect {bad:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("invalid value") && stderr.contains("--connect"),
            "got {stderr:?}"
        );
    }
    let out = run(&["--connect"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--connect needs a value"));
}

/// The serve binary rejects malformed flag values up front — before any
/// load stage — with a one-line message naming the flag and exit 2.
#[test]
fn serve_flags_parse_strictly() {
    for (flag, value) in [
        ("--listen", "not-an-addr"),
        ("--listen", "127.0.0.1"),
        ("--listen", "127.0.0.1:notaport"),
        ("--max-inflight", "0"),
        ("--max-inflight", "-1"),
        ("--max-inflight", "bogus"),
        ("--max-inflight", "1.5"),
        ("--max-connections", "0"),
        ("--admission-wait-ms", "soon"),
        ("--quota-rps", "fast"),
        ("--quota-rps", "0"),
        ("--quota-rps", "-2.5"),
        ("--quota-burst", "0"),
        ("--max-deadline-ms", "0"),
        ("--session-budget-ms", "never"),
        ("--page-rows", "0"),
        ("--postings", "bogus"),
        ("--serve-secs", "forever"),
        ("--fsync", "bogus"),
    ] {
        let out = run_serve(&[flag, value]);
        assert_eq!(
            out.status.code(),
            Some(2),
            "{flag} {value:?} must exit 2, got {:?}",
            out.status
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("invalid value") && stderr.contains(flag),
            "{flag}: one-line message must name the flag, got {stderr:?}"
        );
        // Fail-fast: rejected before loading anything.
        assert!(
            !stderr.contains("loaded:"),
            "{flag}: must reject before the load stage"
        );
    }
    let out = run_serve(&["--listen"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--listen needs a value"));

    let out = run_serve(&["--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag --frobnicate"));
}

/// One-shot serve-then-query round trip through both binaries: the
/// server prints its bound address, the CLI client queries it over the
/// wire, and the server's final counter dump reflects the request.
#[test]
fn serve_and_cli_client_round_trip() {
    use std::io::{BufRead, BufReader};
    use std::process::Stdio;
    let mut server = Command::new(env!("CARGO_BIN_EXE_xkeyword-serve"))
        .args(["--listen", "127.0.0.1:0", "--serve-secs", "30"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("server must spawn");
    let mut lines = BufReader::new(server.stdout.take().unwrap()).lines();
    let first = lines
        .next()
        .expect("server prints its address")
        .expect("readable stdout");
    let addr = first
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected first line {first:?}"))
        .to_string();

    let out = run(&["--connect", &addr, "--query", "john vcr", "--k", "3"]);
    assert_eq!(out.status.code(), Some(0), "{:?}", out.status);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("results ("), "got {stdout:?}");

    // A typed query error still exits 1, same convention as local mode.
    let bad = run(&["--connect", &addr, "--query", "zzz_missing"]);
    assert_eq!(bad.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&bad.stdout).contains("query error"));

    server.kill().ok();
    server.wait().ok();
}

#[test]
fn interactive_topk_rejects_zero_and_non_numbers() {
    use std::io::Write as _;
    use std::process::Stdio;
    let mut child = Command::new(env!("CARGO_BIN_EXE_xkeyword-cli"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("binary must spawn");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(b":topk 0\n:topk soon\n:topk 2\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("invalid value \"0\" for :topk"),
        "got {stdout:?}"
    );
    assert!(
        stdout.contains("invalid value \"soon\" for :topk"),
        "got {stdout:?}"
    );
    assert!(stdout.contains("top-k set to 2"), "got {stdout:?}");
}

#[test]
fn unwritable_query_log_fails_fast_with_exit_1() {
    let out = run(&[
        "--query-log",
        "/nonexistent-dir/records.jsonl",
        "--query",
        "john vcr",
    ]);
    assert_eq!(out.status.code(), Some(1), "{:?}", out.status);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("cannot open query log /nonexistent-dir/records.jsonl"),
        "friendly one-line message expected, got {stderr:?}"
    );
    // Fail-fast: the engine never loads, so no result output.
    assert!(!String::from_utf8_lossy(&out.stdout).contains("results ("));
}

#[test]
fn query_log_flag_writes_jsonl_records_on_exit() {
    let dir = std::env::temp_dir().join(format!("xkw-cli-qlog-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("records.jsonl");
    let path_str = path.to_str().unwrap();

    let out = run(&[
        "--query-log",
        path_str,
        "--slow-ms",
        "1",
        "--query",
        "john vcr",
    ]);
    assert_eq!(out.status.code(), Some(0), "{:?}", out.status);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("wrote 1 query records to"),
        "got {stderr:?}"
    );

    let log = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = log.lines().collect();
    assert_eq!(lines.len(), 1, "one query → one record: {log:?}");
    assert!(lines[0].starts_with("{\"id\":"), "got {:?}", lines[0]);
    assert!(
        lines[0].contains("\"keywords\":[\"john\",\"vcr\"]"),
        "got {:?}",
        lines[0]
    );
    // --slow-ms 1 makes the query slow → forced capture with an EXPLAIN
    // profile attached at export time.
    assert!(lines[0].contains("\"slow\":true"), "got {:?}", lines[0]);
    assert!(lines[0].contains("\"explain\":{"), "got {:?}", lines[0]);
    std::fs::remove_dir_all(&dir).ok();
}

/// The interactive write path end to end: `:ingest FILE` makes the new
/// document's keywords queryable, `:delete ID` retires them, `:stats`
/// reports the WAL counters — and a second process pointed at the same
/// `--wal-dir` replays the history on startup.
#[test]
fn interactive_ingest_delete_and_wal_recovery_round_trip() {
    use std::io::Write as _;
    use std::process::Stdio;
    let dir = std::env::temp_dir().join(format!("xkw-cli-ingest-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let base = dir.join("base.xml");
    std::fs::write(
        &base,
        "<bib><paper><title>xml keyword search</title><author>jones</author></paper></bib>",
    )
    .unwrap();
    let doc = dir.join("doc.xml");
    std::fs::write(
        &doc,
        "<bib><paper><title>proximity ranking</title><author>royce</author></paper></bib>",
    )
    .unwrap();
    let wal_dir = dir.join("wal");
    let wal_flag = wal_dir.to_str().unwrap();

    let mut child = Command::new(env!("CARGO_BIN_EXE_xkeyword-cli"))
        .args([base.to_str().unwrap(), "--wal-dir", wal_flag])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("binary must spawn");
    let script = format!(
        ":ingest {}\nroyce ranking\n:delete soon\n:delete 7\n:delete 1\n:stats\n",
        doc.to_str().unwrap()
    );
    child
        .stdin
        .take()
        .unwrap()
        .write_all(script.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("as document 1"), "got {stdout:?}");
    assert!(
        stdout.contains("results ("),
        "ingested keywords must be queryable: {stdout:?}"
    );
    assert!(
        stdout.contains("invalid value \"soon\" for :delete"),
        "got {stdout:?}"
    );
    assert!(
        stdout.contains("delete error: document 7 was never ingested"),
        "got {stdout:?}"
    );
    assert!(
        stdout.contains("wal: 2 appends"),
        ":stats must show the WAL line: {stdout:?}"
    );
    assert!(stdout.contains("deleted document 1"), "got {stdout:?}");

    // Reopen: insert + delete replay to an empty net document set.
    let reopened = Command::new(env!("CARGO_BIN_EXE_xkeyword-cli"))
        .args([
            base.to_str().unwrap(),
            "--wal-dir",
            wal_flag,
            "--query",
            "jones",
        ])
        .output()
        .expect("binary must spawn");
    assert_eq!(reopened.status.code(), Some(0), "{:?}", reopened.status);
    let stderr = String::from_utf8_lossy(&reopened.stderr);
    assert!(
        stderr.contains("wal: 0 documents recovered (1 replays)"),
        "got {stderr:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn postings_format_does_not_change_one_shot_output() {
    let raw = run(&["--postings", "raw", "--query", "john vcr"]);
    assert_eq!(raw.status.code(), Some(0), "{:?}", raw.status);
    let raw_out = result_lines(&raw);
    assert!(raw_out.contains("results ("), "got {raw_out:?}");

    let packed = run(&["--postings", "packed", "--query", "john vcr"]);
    assert_eq!(packed.status.code(), Some(0), "{:?}", packed.status);
    assert_eq!(
        result_lines(&packed),
        raw_out,
        "--postings packed must print byte-identical results"
    );
}
