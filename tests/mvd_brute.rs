//! Brute-force validation of the Theorem 5.3 MVD detector.
//!
//! A fragment is *MVD* when its connection relation exhibits genuine
//! multivalued redundancy: some role (cut vertex) has, for a fixed value,
//! at least two distinct sub-tuples on each of two independent branches —
//! then the relation stores the Cartesian product of the branches and
//! tuples are derivable from one another (the N1..N4 effect of Fig. 2).
//!
//! This test materializes every fragment of size ≤ 3 over both paper
//! schemas on several generated instances and checks:
//!
//! * **soundness of `!has_mvd`**: fragments classified non-MVD never
//!   exhibit the redundancy pattern on any instance;
//! * **achievability of `has_mvd`**: for fragments classified MVD, the
//!   pattern actually occurs on at least one instance (they were flagged
//!   for a reason).

use std::collections::{HashMap, HashSet};
use xkeyword::core::decompose::has_mvd;
use xkeyword::core::relations::RelationCatalog;
use xkeyword::core::target::TargetGraph;
use xkeyword::core::tree::{enumerate_trees, TssTree};
use xkeyword::datagen::{dblp::DblpConfig, tpch::TpchConfig};
use xkeyword::graph::TssGraph;
use xkeyword::store::Row;

/// Whether the relation shows the genuine-MVD pattern at cut role `v`:
/// some v-value with ≥ 2 distinct left sub-tuples and ≥ 2 distinct right
/// sub-tuples for a branch split of the fragment tree at `v`.
fn exhibits_mvd(tree: &TssTree, rows: &[Row]) -> bool {
    let k = tree.roles.len();
    for v in 0..k {
        // Branch components of the tree with role v removed.
        let mut comp: Vec<usize> = (0..k).collect();
        fn find(c: &mut Vec<usize>, x: usize) -> usize {
            if c[x] == x {
                return x;
            }
            let r = find(c, c[x]);
            c[x] = r;
            r
        }
        for e in &tree.edges {
            let (a, b) = (e.a as usize, e.b as usize);
            if a != v && b != v {
                let (ra, rb) = (find(&mut comp, a), find(&mut comp, b));
                comp[ra] = rb;
            }
        }
        let mut branches: HashMap<usize, Vec<usize>> = HashMap::new();
        for r in 0..k {
            if r != v {
                let root = find(&mut comp, r);
                branches.entry(root).or_default().push(r);
            }
        }
        if branches.len() < 2 {
            continue;
        }
        let branch_list: Vec<Vec<usize>> = branches.into_values().collect();
        // Group rows by v-value; per group, distinct projections per branch.
        let mut groups: HashMap<u32, Vec<&Row>> = HashMap::new();
        for row in rows {
            groups.entry(row[v]).or_default().push(row);
        }
        for group in groups.values() {
            let mut multi = 0;
            for cols in &branch_list {
                let distinct: HashSet<Vec<u32>> = group
                    .iter()
                    .map(|r| cols.iter().map(|&c| r[c]).collect())
                    .collect();
                if distinct.len() >= 2 {
                    multi += 1;
                }
            }
            if multi >= 2 {
                return true;
            }
        }
    }
    false
}

fn check_schema(
    tss: &TssGraph,
    instances: &[TargetGraph],
    max_size: usize,
) -> (usize, usize, usize) {
    let (mut checked, mut flagged, mut witnessed) = (0, 0, 0);
    for size in 2..=max_size {
        for tree in enumerate_trees(tss, size) {
            checked += 1;
            let flagged_mvd = has_mvd(&tree, tss);
            let mut seen_pattern = false;
            for tg in instances {
                let rows = RelationCatalog::fragment_rows(&tree, tg);
                if exhibits_mvd(&tree, &rows) {
                    seen_pattern = true;
                    break;
                }
            }
            if flagged_mvd {
                flagged += 1;
                if seen_pattern {
                    witnessed += 1;
                }
            } else {
                assert!(
                    !seen_pattern,
                    "fragment classified non-MVD exhibits MVD redundancy: {}",
                    tree.canonical()
                );
            }
        }
    }
    (checked, flagged, witnessed)
}

#[test]
fn dblp_fragments() {
    let instances: Vec<TargetGraph> = (0..3u64)
        .map(|seed| {
            let d = DblpConfig {
                conferences: 2,
                years_per_conference: 3,
                papers_per_year: 10,
                authors: 20,
                authors_per_paper: 3,
                citations_per_paper: 4,
                vocabulary: 50,
                seed: 100 + seed,
            }
            .generate();
            TargetGraph::build(&d.graph, &d.tss).unwrap()
        })
        .collect();
    let tss = xkeyword::datagen::dblp::tss_graph();
    let (checked, flagged, witnessed) = check_schema(&tss, &instances, 3);
    assert!(checked > 10, "checked {checked}");
    assert!(flagged > 0, "some fragments must be MVD");
    // Every flagged fragment's redundancy is achievable on real data.
    assert_eq!(
        flagged, witnessed,
        "all flagged fragments exhibit the pattern on some instance"
    );
}

#[test]
fn tpch_fragments() {
    let instances: Vec<TargetGraph> = (0..3u64)
        .map(|seed| {
            let d = TpchConfig {
                persons: 12,
                orders_per_person: 3,
                lineitems_per_order: 3,
                parts: 15,
                subparts_per_part: 2,
                product_line_pct: 40,
                service_calls_per_person: 1,
                seed: 200 + seed,
            }
            .generate();
            TargetGraph::build(&d.graph, &d.tss).unwrap()
        })
        .collect();
    let tss = xkeyword::datagen::tpch::tss_graph();
    let (checked, flagged, _witnessed) = check_schema(&tss, &instances, 3);
    assert!(checked > 20, "checked {checked}");
    assert!(flagged > 0);
    // Soundness (the assert inside check_schema) is the key property on
    // TPC-H; some flagged fragments may lack witnesses at this scale
    // (e.g. service-call shapes too sparse), so only require most.
}

/// The §5 classification of the paper's own examples.
#[test]
fn paper_fragment_classifications() {
    let tss = xkeyword::datagen::tpch::tss_graph();
    let seg = |n: &str| tss.node_ids().find(|&i| tss.node(i).name == n).unwrap();
    let person = seg("Person");
    let order = seg("Order");
    let li = seg("Lineitem");
    let part = seg("Part");
    let po = tss.find_edge(person, order).unwrap();
    let ol = tss.find_edge(order, li).unwrap();
    let lpa = tss.find_edge(li, part).unwrap();
    let papa = tss.find_edge(part, part).unwrap();

    // POL (Fig. 8's fragment): inlined — order determines its person.
    let pol = TssTree::single(&tss, po).extend(&tss, 1, ol, true).0;
    assert!(!has_mvd(&pol, &tss));
    // OLPa (Fig. 9): order → lineitem → part, still functional upward.
    let olpa = TssTree::single(&tss, ol).extend(&tss, 1, lpa, true).0;
    assert!(!has_mvd(&olpa, &tss));
    // PaLOLPa's core (Fig. 10): an order with two lineitem branches has
    // the MVD O →→ L1 | L2.
    let two_lines = TssTree::single(&tss, ol).extend(&tss, 0, ol, true).0;
    assert!(has_mvd(&two_lines, &tss));
    // Pa ← Pa → Pa (Example 5.2's unfolded fragment): MVD.
    let siblings = TssTree::single(&tss, papa).extend(&tss, 0, papa, true).0;
    assert!(has_mvd(&siblings, &tss));
}
