//! Property tests for the §3.2 presentation-graph semantics on randomized
//! DBLP instances: expansion properties (a)–(c), contraction properties,
//! and agreement between the exact (oracle-driven) and on-demand
//! (Fig. 13, probe-driven) expansions.

use proptest::prelude::*;
use std::collections::{HashMap, HashSet};
use xkeyword::core::exec::{self, ExecMode, PartialCache};
use xkeyword::core::optimizer::build_plan_anchored;
use xkeyword::core::prelude::*;
use xkeyword::core::presentation::expand_on_demand;
use xkeyword::datagen::dblp::DblpConfig;

fn instance(seed: u64) -> (XKeyword, (String, String)) {
    let data = DblpConfig {
        conferences: 2,
        years_per_conference: 2,
        papers_per_year: 8,
        authors: 16,
        authors_per_paper: 2,
        citations_per_paper: 2,
        vocabulary: 40,
        seed,
    }
    .generate();
    let xk = XKeyword::load(
        data.graph,
        data.tss,
        LoadOptions {
            decomposition: xkeyword::core::xkeyword::DecompositionSpec::Combined { m: 5, b: 2 },
            ..LoadOptions::default()
        },
    )
    .unwrap();
    // A connected surname pair: two authors of one paper.
    let paper_seg = xk
        .tss
        .node_ids()
        .find(|&i| xk.tss.node(i).name == "Paper")
        .unwrap();
    let pair = xk
        .targets()
        .tos_of(paper_seg)
        .iter()
        .find_map(|&p| {
            let authors: Vec<_> = xk
                .targets()
                .edges_out(p)
                .iter()
                .filter(|(e, _)| xk.tss.node(xk.tss.edge(*e).to).name == "Author")
                .map(|&(_, a)| a)
                .collect();
            if authors.len() < 2 {
                return None;
            }
            let surname = |t| {
                xk.label(t)
                    .split_whitespace()
                    .last()
                    .unwrap()
                    .trim_end_matches(']')
                    .to_owned()
            };
            let (a, b) = (surname(authors[0]), surname(authors[1]));
            (a != b).then_some((a, b))
        })
        .expect("a co-authored paper");
    (xk, pair)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    #[test]
    fn expansion_and_contraction_properties(seed in 0u64..500, which_plan in 0usize..100) {
        let (xk, (a, b)) = instance(seed);
        let kws = [a.as_str(), b.as_str()];
        let plans = xk.plans(&kws, 6);
        let res = exec::all_plans(
            &xk.db, &xk.catalog(), &plans, ExecMode::Cached { capacity: 4096 },
        );
        // Group results by plan; pick one with results.
        let mut by_plan: HashMap<usize, Vec<Vec<ToId>>> = HashMap::new();
        for r in &res.rows {
            by_plan.entry(r.plan).or_default().push(r.assignment.clone());
        }
        prop_assume!(!by_plan.is_empty());
        let keys: Vec<usize> = {
            let mut k: Vec<usize> = by_plan.keys().copied().collect();
            k.sort_unstable();
            k
        };
        let pi = keys[which_plan % keys.len()];
        let mttons = &by_plan[&pi];
        let plan = &plans[pi];

        let mut pg = PresentationGraph::initial(pi, mttons[0].clone());
        // (a) expansion is a supergraph; (b) all role nodes displayed;
        // (c) every displayed node supported.
        for role in 0..plan.role_count() as u8 {
            let before: HashSet<(u8, ToId)> = pg.nodes().collect();
            pg.expand_exact(role, mttons);
            let after: HashSet<(u8, ToId)> = pg.nodes().collect();
            prop_assert!(before.is_subset(&after), "(a) violated");
            let required: HashSet<ToId> =
                mttons.iter().map(|m| m[role as usize]).collect();
            let shown: HashSet<ToId> = pg.nodes_of_role(role).into_iter().collect();
            prop_assert_eq!(&required, &shown, "(b) violated for role {}", role);
            prop_assert!(pg.invariant_holds(), "(c) violated");
        }
        // Contraction: subgraph, single node of the role, supported.
        let role = (plan.role_count() as u8).saturating_sub(1);
        let keep = mttons[0][role as usize];
        let before: HashSet<(u8, ToId)> = pg.nodes().collect();
        pg.contract((role, keep));
        let after: HashSet<(u8, ToId)> = pg.nodes().collect();
        prop_assert!(after.is_subset(&before));
        prop_assert_eq!(pg.nodes_of_role(role), vec![keep]);
        prop_assert!(pg.invariant_holds());
    }

    #[test]
    fn on_demand_equals_exact_on_random_instances(seed in 0u64..500) {
        let (xk, (a, b)) = instance(seed);
        let kws = [a.as_str(), b.as_str()];
        let plans = xk.plans(&kws, 5);
        let res = exec::all_plans(
            &xk.db, &xk.catalog(), &plans, ExecMode::Cached { capacity: 4096 },
        );
        let mut by_plan: HashMap<usize, Vec<Vec<ToId>>> = HashMap::new();
        for r in &res.rows {
            by_plan.entry(r.plan).or_default().push(r.assignment.clone());
        }
        prop_assume!(!by_plan.is_empty());
        let (&pi, mttons) = by_plan.iter().min_by_key(|(p, _)| **p).unwrap();
        let plan = &plans[pi];

        let mut exact = PresentationGraph::initial(pi, mttons[0].clone());
        let mut ondemand = PresentationGraph::initial(pi, mttons[0].clone());
        let mut cache = PartialCache::new(4096);
        for role in 0..plan.role_count() as u8 {
            exact.expand_exact(role, mttons);
            let anchored = build_plan_anchored(
                &plan.ctssn, &xk.catalog(), &xk.master(), &kws, role,
            )
            .unwrap();
            let universe = xk
                .targets()
                .tos_of(plan.ctssn.tree.roles[role as usize])
                .to_vec();
            expand_on_demand(
                &xk.db,
                &xk.catalog(),
                &anchored,
                &mut ondemand,
                &universe,
                ExecMode::Cached { capacity: 4096 },
                &mut cache,
            );
        }
        for role in 0..plan.role_count() as u8 {
            let mut e = exact.nodes_of_role(role);
            let mut o = ondemand.nodes_of_role(role);
            e.sort_unstable();
            o.sort_unstable();
            prop_assert_eq!(e, o, "role {} differs", role);
        }
        prop_assert!(ondemand.invariant_holds());
    }
}
