//! Observability tests: EXPLAIN ANALYZE I/O attribution on a DBLP
//! instance, Chrome `trace_event` export validity, worker-panic
//! surfacing as [`XkError::WorkerPanic`], and a property test that
//! per-thread attributed I/O always sums to the pool-wide cumulative
//! counters under concurrent queries.

use proptest::prelude::*;
use std::sync::OnceLock;
use xkeyword::core::exec::{try_all_plans_mt, ExecMode};
use xkeyword::core::prelude::*;
use xkeyword::core::xkeyword::DecompositionSpec;
use xkeyword::datagen::dblp::DblpConfig;
use xkeyword::datagen::tpch;

fn cached() -> ExecMode {
    ExecMode::Cached { capacity: 1024 }
}

fn load_figure1() -> XKeyword {
    let (graph, _, _) = tpch::figure1();
    let xk = XKeyword::load(
        graph,
        tpch::tss_graph(),
        LoadOptions {
            decomposition: DecompositionSpec::XKeyword { m: 6, b: 2 },
            pool_pages: 64,
            pool_shards: 8,
            ..LoadOptions::default()
        },
    )
    .unwrap();
    // These tests assert against the *global* span collector. A sampled
    // or forced flight record drains that collector into the record, so
    // recording is switched off here to keep concurrently-running tests
    // in this binary from stealing each other's spans. The recorder has
    // its own suite (tests/recorder.rs).
    xk.engine().recorder().set_enabled(false);
    xk
}

fn load_dblp() -> XKeyword {
    let data = DblpConfig {
        conferences: 2,
        years_per_conference: 2,
        papers_per_year: 12,
        authors: 60,
        authors_per_paper: 2,
        citations_per_paper: 3,
        vocabulary: 120,
        seed: 0xB0B,
    }
    .generate();
    let xk = XKeyword::load(
        data.graph,
        data.tss,
        LoadOptions {
            decomposition: DecompositionSpec::XKeyword { m: 6, b: 2 },
            pool_pages: 256,
            ..LoadOptions::default()
        },
    )
    .unwrap();
    xk.engine().recorder().set_enabled(false);
    xk
}

/// The acceptance query: `:explain` over three DBLP author keywords must
/// print a per-operator tree whose summed attributed buffer-pool I/O
/// equals the query's own [`QueryMetrics`] I/O total, while returning
/// the same MTTONs as a plain query.
#[test]
fn explain_io_decomposes_on_three_keyword_dblp_query() {
    let xk = load_dblp();
    let engine = xk.engine();
    // Three distinct author surnames that occur in the generated data.
    let names: Vec<String> = (0..60)
        .map(|i| format!("surname{i}"))
        .filter(|s| !xk.master().containing_list(s).is_empty())
        .take(3)
        .collect();
    assert_eq!(names.len(), 3, "DBLP instance must hold 3 author surnames");
    let keywords: Vec<&str> = names.iter().map(String::as_str).collect();

    let report = engine.explain(&keywords, 8, cached()).unwrap();
    let m = &report.outcome.metrics;
    assert_eq!(
        report.io_total(),
        m.io_hits + m.io_misses,
        "per-operator attributed I/O must decompose the query total"
    );
    assert!(
        report.io_total() > 0,
        "a 3-keyword query must touch the pool"
    );
    assert_eq!(report.profiles.len(), m.plans);

    let plain = engine.query_all(&keywords, 8, cached()).unwrap();
    assert_eq!(report.outcome.mttons, plain.mttons);

    let text = report.render();
    assert!(text.contains("drive "), "missing driver operator:\n{text}");
    assert!(text.contains("probe "), "missing probe operator:\n{text}");
    assert!(text.contains("totals: plans="), "missing footer:\n{text}");
}

/// Sabotaged plans make worker threads panic; the engine surfaces that
/// as a typed [`XkError::WorkerPanic`] carrying the index of the plan
/// the worker was evaluating, and keyword decoration (the engine layer
/// applies it in `run`) names the query in the rendered message.
#[test]
fn worker_panics_surface_as_typed_errors() {
    let xk = load_figure1();
    let mut plans = xk.plans(&["john", "vcr"], 8);
    assert!(plans.len() >= 2, "need several plans to exercise workers");
    let last = plans.len() - 1;
    let driver = plans[last].driver as usize;
    plans[last].candidates[driver] = None;
    for threads in [1usize, 2, 4] {
        let err = try_all_plans_mt(&xk.db, &xk.catalog(), &plans, cached(), threads).unwrap_err();
        assert!(
            matches!(&err, XkError::WorkerPanic { plan: Some(p), .. } if *p == last),
            "expected WorkerPanic naming plan {last} at {threads} threads, got {err:?}"
        );
        let text = err.with_keywords(&["john", "vcr"]).to_string();
        assert!(text.contains("worker thread panicked"), "{text}");
        assert!(text.contains(&format!("plan {last}")), "{text}");
        assert!(text.contains("john, vcr"), "{text}");
    }
}

/// Runs queries with tracing enabled and checks the Chrome export is a
/// syntactically valid JSON array: `process_name`/`thread_name`
/// metadata events (phase `M`) first, then one complete `X` event per
/// span.
#[test]
fn chrome_trace_export_is_valid_trace_event_json() {
    let xk = load_figure1();
    xkeyword::obs::set_enabled(true);
    let engine = xk.engine();
    engine.query_all(&["john", "vcr"], 8, cached()).unwrap();
    engine.query_all(&["us", "vcr"], 8, cached()).unwrap();
    let spans = xkeyword::obs::trace::take_spans();
    assert!(!spans.is_empty(), "tracing enabled must record spans");
    assert!(spans.iter().any(|s| s.name == "query"));
    assert!(spans.iter().any(|s| s.name == "exec.plan"));
    let distinct_tids = spans
        .iter()
        .map(|s| s.tid)
        .collect::<std::collections::BTreeSet<_>>()
        .len();

    let json = xkeyword::obs::trace::chrome_trace_json(&spans);
    let value = json::parse(&json).expect("export must be valid JSON");
    let events = match value {
        json::Value::Array(events) => events,
        other => panic!("top level must be an array, got {other:?}"),
    };
    assert_eq!(
        events.len(),
        spans.len() + 1 + distinct_tids,
        "one process_name event, a thread_name per thread, then one event per span"
    );
    let mut meta_names = Vec::new();
    let mut span_events = 0usize;
    for e in &events {
        let json::Value::Object(fields) = e else {
            panic!("every trace event must be an object, got {e:?}");
        };
        let key = |k: &str| fields.iter().find(|(n, _)| n == k).map(|(_, v)| v);
        let Some(json::Value::String(name)) = key("name") else {
            panic!("every trace event must carry a string name: {e:?}");
        };
        let Some(json::Value::String(ph)) = key("ph") else {
            panic!("every trace event must carry a phase: {e:?}");
        };
        assert!(matches!(key("pid"), Some(json::Value::Number(_))));
        match ph.as_str() {
            "M" => {
                if name == "thread_name" {
                    assert!(matches!(key("tid"), Some(json::Value::Number(_))));
                }
                assert_eq!(
                    span_events, 0,
                    "metadata events must precede all span events"
                );
                assert!(
                    name == "process_name" || name == "thread_name",
                    "unexpected metadata event {name:?}"
                );
                let Some(json::Value::Object(args)) = key("args") else {
                    panic!("metadata event must carry args: {e:?}");
                };
                assert!(
                    args.iter()
                        .any(|(k, v)| k == "name" && matches!(v, json::Value::String(_))),
                    "metadata args must name the process/thread: {e:?}"
                );
                meta_names.push(name.clone());
            }
            "X" => {
                span_events += 1;
                assert!(matches!(key("tid"), Some(json::Value::Number(_))));
                assert!(matches!(key("ts"), Some(json::Value::Number(_))));
                assert!(matches!(key("dur"), Some(json::Value::Number(_))));
            }
            other => panic!("unexpected phase {other:?} in {e:?}"),
        }
    }
    assert_eq!(span_events, spans.len(), "one complete event per span");
    assert_eq!(
        meta_names.iter().filter(|n| *n == "process_name").count(),
        1,
        "exactly one process_name metadata event"
    );
    assert_eq!(
        meta_names.iter().filter(|n| *n == "thread_name").count(),
        distinct_tids,
        "one thread_name metadata event per distinct tid"
    );
}

/// A minimal recursive-descent JSON parser — enough to check the trace
/// export is well-formed without a serde dependency.
mod json {
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        Number(f64),
        String(String),
        Array(Vec<Value>),
        Object(Vec<(String, Value)>),
    }

    pub fn parse(text: &str) -> Result<Value, String> {
        let b = text.as_bytes();
        let mut i = 0;
        let v = value(b, &mut i)?;
        skip_ws(b, &mut i);
        if i != b.len() {
            return Err(format!("trailing bytes at {i}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], i: &mut usize) {
        while *i < b.len() && b[*i].is_ascii_whitespace() {
            *i += 1;
        }
    }

    fn expect(b: &[u8], i: &mut usize, c: u8) -> Result<(), String> {
        if b.get(*i) == Some(&c) {
            *i += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at {}", c as char, *i))
        }
    }

    fn value(b: &[u8], i: &mut usize) -> Result<Value, String> {
        skip_ws(b, i);
        match b.get(*i) {
            Some(b'{') => object(b, i),
            Some(b'[') => array(b, i),
            Some(b'"') => Ok(Value::String(string(b, i)?)),
            Some(b't') => literal(b, i, "true", Value::Bool(true)),
            Some(b'f') => literal(b, i, "false", Value::Bool(false)),
            Some(b'n') => literal(b, i, "null", Value::Null),
            Some(_) => number(b, i),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(b: &[u8], i: &mut usize, word: &str, v: Value) -> Result<Value, String> {
        if b[*i..].starts_with(word.as_bytes()) {
            *i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at {}", *i))
        }
    }

    fn number(b: &[u8], i: &mut usize) -> Result<Value, String> {
        let start = *i;
        while *i < b.len() && matches!(b[*i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *i += 1;
        }
        std::str::from_utf8(&b[start..*i])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Value::Number)
            .ok_or_else(|| format!("bad number at {start}"))
    }

    fn string(b: &[u8], i: &mut usize) -> Result<String, String> {
        expect(b, i, b'"')?;
        let mut out = String::new();
        loop {
            match b.get(*i) {
                Some(b'"') => {
                    *i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *i += 1;
                    match b.get(*i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = b
                                .get(*i + 1..*i + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| format!("{e}"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            *i += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    *i += 1;
                }
                Some(&c) => {
                    // Multi-byte UTF-8 passes through verbatim.
                    let len = match c {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = b.get(*i..*i + len).ok_or("truncated utf-8")?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|e| format!("{e}"))?);
                    *i += len;
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn array(b: &[u8], i: &mut usize) -> Result<Value, String> {
        expect(b, i, b'[')?;
        let mut out = Vec::new();
        skip_ws(b, i);
        if b.get(*i) == Some(&b']') {
            *i += 1;
            return Ok(Value::Array(out));
        }
        loop {
            out.push(value(b, i)?);
            skip_ws(b, i);
            match b.get(*i) {
                Some(b',') => *i += 1,
                Some(b']') => {
                    *i += 1;
                    return Ok(Value::Array(out));
                }
                other => return Err(format!("bad array separator {other:?}")),
            }
        }
    }

    fn object(b: &[u8], i: &mut usize) -> Result<Value, String> {
        expect(b, i, b'{')?;
        let mut out = Vec::new();
        skip_ws(b, i);
        if b.get(*i) == Some(&b'}') {
            *i += 1;
            return Ok(Value::Object(out));
        }
        loop {
            skip_ws(b, i);
            let k = string(b, i)?;
            skip_ws(b, i);
            expect(b, i, b':')?;
            let v = value(b, i)?;
            out.push((k, v));
            skip_ws(b, i);
            match b.get(*i) {
                Some(b',') => *i += 1,
                Some(b'}') => {
                    *i += 1;
                    return Ok(Value::Object(out));
                }
                other => return Err(format!("bad object separator {other:?}")),
            }
        }
    }
}

/// Private instance for the property test below — no other test touches
/// this pool, so its global counters move only under the test's own
/// threads.
fn shared() -> &'static XKeyword {
    static XK: OnceLock<XKeyword> = OnceLock::new();
    XK.get_or_init(load_figure1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For any mix of queries, thread count and per-thread workload, the
    /// per-thread `local_io` deltas (the attribution EXPLAIN and the
    /// engine metrics are built on) must sum exactly to the pool-wide
    /// cumulative counters — hits and misses separately, no I/O lost or
    /// invented under concurrency.
    #[test]
    fn attributed_io_sums_to_pool_counters(
        threads in 1usize..6,
        rounds in 1usize..8,
        picks in proptest::collection::vec(0usize..4, 1..6),
    ) {
        let xk = shared();
        let engine = xk.engine();
        let queries: [&[&str]; 4] = [&["john", "vcr"], &["us", "vcr"], &["john", "us"], &["tv"]];
        let before = xk.db.io();
        let deltas: Vec<(u64, u64)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    s.spawn(|| {
                        let b = xk.db.local_io();
                        for _ in 0..rounds {
                            for &p in &picks {
                                engine.query_all(queries[p], 8, cached()).unwrap();
                            }
                        }
                        let d = xk.db.local_io().since(b);
                        (d.hits, d.misses)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let global = xk.db.io().since(before);
        let (hits, misses) = deltas
            .iter()
            .fold((0, 0), |(h, m), &(dh, dm)| (h + dh, m + dm));
        prop_assert_eq!((hits, misses), (global.hits, global.misses));
    }
}
