//! The paper's worked examples, end-to-end through the public API.
//!
//! Everything here runs against the literal Figure 1 document of
//! `xkw_datagen::tpch::figure1` and must hold *exactly*: these are the
//! numbers printed in the paper's text.

use xkeyword::core::exec::ExecMode;
use xkeyword::core::prelude::*;
use xkeyword::core::semantics::enumerate_mtnns;
use xkeyword::core::xkeyword::DecompositionSpec;
use xkeyword::datagen::tpch;

fn load(spec: DecompositionSpec) -> XKeyword {
    let (graph, _, _) = tpch::figure1();
    XKeyword::load(
        graph,
        tpch::tss_graph(),
        LoadOptions {
            decomposition: spec,
            ..LoadOptions::default()
        },
    )
    .unwrap()
}

/// §1: "The first highlighted tree … is a result of size 6. The second
/// highlighted tree … is a result of size 8."
#[test]
fn john_vcr_sizes() {
    let xk = load(DecompositionSpec::Minimal);
    let res = xk.query_all(&["john", "vcr"], 8, ExecMode::Cached { capacity: 1024 });
    let mut scores: Vec<usize> = res.mttons().iter().map(|m| m.score).collect();
    scores.sort_unstable();
    assert_eq!(scores[0], 6, "best John-VCR result has size 6");
    assert!(scores.contains(&8), "the subpart route has size 8");
    // The size-6 result is unique.
    assert_eq!(scores.iter().filter(|&&s| s == 6).count(), 1);
    // And its target objects are John's Person, a Lineitem and the
    // Product whose description mentions the VCR.
    let best = res.mttons().into_iter().min_by_key(|m| m.score).unwrap();
    let labels: Vec<String> = best.tos.iter().map(|&t| xk.label(t)).collect();
    assert!(labels.iter().any(|l| l.contains("John")), "{labels:?}");
    assert!(
        labels.iter().any(|l| l.starts_with("Lineitem")),
        "{labels:?}"
    );
    assert!(
        labels.iter().any(|l| l.starts_with("Product")),
        "{labels:?}"
    );
}

/// Figure 2: the keyword query "US, VCR" has exactly the four results
/// N1..N4 on the supplier route — the multivalued-dependency-style
/// redundancy XKeyword's presentation graphs are designed to hide.
#[test]
fn us_vcr_four_results() {
    let xk = load(DecompositionSpec::XKeyword { m: 6, b: 2 });
    let plans = xk.plans(&["us", "vcr"], 8);
    let res = xk.query_all(&["us", "vcr"], 8, ExecMode::Naive);
    // The supplier-route CN: Person–Lineitem–Part–Part (size 3 in TSS
    // edges) using the Lineitem→Person supplier edge.
    let li = xk
        .tss
        .node_ids()
        .find(|&i| xk.tss.node(i).name == "Lineitem")
        .unwrap();
    let person = xk
        .tss
        .node_ids()
        .find(|&i| xk.tss.node(i).name == "Person")
        .unwrap();
    let supplier_edge = xk.tss.find_edge(li, person).unwrap();
    let n: usize = res
        .rows
        .iter()
        .filter(|r| {
            let p = &plans[r.plan];
            p.ctssn.size() == 3 && p.ctssn.tree.edges.iter().any(|e| e.edge == supplier_edge)
        })
        .count();
    assert_eq!(n, 4, "exactly N1..N4");
}

/// §4: the CTSSNs for "TV, VCR" at Z = 8 include the five shapes the
/// paper lists (the subpart edge followed directly, the doubled subpart
/// edge, the order-mediated network and the product-description one).
#[test]
fn tv_vcr_ctssns() {
    let xk = load(DecompositionSpec::Minimal);
    let plans = xk.plans(&["tv", "vcr"], 8);
    assert!(!plans.is_empty());
    let seg = |n: &str| {
        xk.tss
            .node_ids()
            .find(|&i| xk.tss.node(i).name == n)
            .unwrap()
    };
    let part = seg("Part");
    let order = seg("Order");
    let product = seg("Product");
    // Part→Part direct (subpart).
    assert!(plans
        .iter()
        .any(|p| p.ctssn.size() == 1 && p.ctssn.tree.roles == vec![part, part]));
    // Part ← Part → Part (edge followed twice — needs the unfolded
    // fragment of Example 5.2).
    assert!(plans
        .iter()
        .any(|p| { p.ctssn.size() == 2 && p.ctssn.tree.roles.iter().all(|&r| r == part) }));
    // Order-mediated: Part ← Lineitem ← Order → Lineitem → Part.
    assert!(plans
        .iter()
        .any(|p| p.ctssn.tree.roles.contains(&order) && p.ctssn.size() == 4));
    // Product-descr variant.
    assert!(plans.iter().any(|p| p.ctssn.tree.roles.contains(&product)));
}

/// The MTNN oracle and the relational execution agree on every Figure 1
/// query (the headline correctness property: the full pipeline computes
/// exactly the §3.1 semantics).
#[test]
fn engine_equals_semantics_oracle() {
    for spec in [
        DecompositionSpec::Minimal,
        DecompositionSpec::Complete { l: 2 },
        DecompositionSpec::XKeyword { m: 6, b: 2 },
        DecompositionSpec::Combined { m: 6, b: 2 },
    ] {
        let xk = load(spec);
        for kws in [["john", "vcr"], ["us", "tv"], ["mike", "dvd"]] {
            let got = xk
                .query_all(&kws, 8, ExecMode::Cached { capacity: 2048 })
                .mttons();
            let want =
                xkeyword::core::semantics::enumerate_mttons(&xk.graph(), &xk.targets(), &kws, 8);
            assert_eq!(got, want, "{kws:?}");
        }
    }
}

/// Presentation flow on Figure 2: PG0 shows one result; expanding the
/// Lineitem role reveals the second lineitem; expanding the VCR Part role
/// reveals both subparts; contraction returns to a single result.
#[test]
fn figure2_presentation_graph_walkthrough() {
    let xk = load(DecompositionSpec::Combined { m: 6, b: 2 });
    let kws = ["us", "vcr"];
    let plans = xk.plans(&kws, 8);
    let li = xk
        .tss
        .node_ids()
        .find(|&i| xk.tss.node(i).name == "Lineitem")
        .unwrap();
    let person = xk
        .tss
        .node_ids()
        .find(|&i| xk.tss.node(i).name == "Person")
        .unwrap();
    let supplier_edge = xk.tss.find_edge(li, person).unwrap();
    // Several CNs share the size-3 supplier shape (e.g. VCR as parent vs
    // child part); pick the one that actually has results on Figure 1.
    let (pi, mut pg) = (0..plans.len())
        .filter(|&i| {
            plans[i].ctssn.size() == 3
                && plans[i]
                    .ctssn
                    .tree
                    .edges
                    .iter()
                    .any(|e| e.edge == supplier_edge)
        })
        .find_map(|i| xk.initial_presentation(&plans, i).map(|pg| (i, pg)))
        .expect("Figure 2 CN with results");
    assert_eq!(pg.len(), 4, "one result = 4 target objects");
    let mut cache = xkeyword::core::exec::PartialCache::new(1024);
    // Expand every role; afterwards all participating TOs are shown:
    // 1 person + 2 lineitems + 1 TV part + 2 VCR parts = 6.
    for role in 0..plans[pi].role_count() as u8 {
        xk.expand(&kws, &plans, &mut pg, role, &mut cache);
    }
    assert!(pg.invariant_holds());
    assert_eq!(pg.len(), 6);
    // Contract on one of the VCR parts: back to a single-result view.
    let vcr_role = (0..plans[pi].role_count() as u8)
        .find(|&r| {
            pg.nodes_of_role(r).len() == 2 && {
                let seg = plans[pi].ctssn.tree.roles[r as usize];
                xk.tss.node(seg).name == "Part"
            }
        })
        .expect("expanded VCR role");
    let keep = pg.nodes_of_role(vcr_role)[0];
    pg.contract((vcr_role, keep));
    assert!(pg.invariant_holds());
    assert_eq!(pg.nodes_of_role(vcr_role), vec![keep]);
}

/// The sizes reported by the list presentation match the raw MTNN sizes.
#[test]
fn scores_are_mtnn_sizes() {
    let xk = load(DecompositionSpec::Minimal);
    let (graph, _, _) = tpch::figure1();
    let res = xk.query_all(&["john", "tv"], 8, ExecMode::Naive);
    let oracle_sizes: std::collections::HashSet<usize> =
        enumerate_mtnns(&graph, &["john", "tv"], 8)
            .iter()
            .map(|m| m.size())
            .collect();
    for m in res.mttons() {
        assert!(oracle_sizes.contains(&m.score));
    }
}
