//! Property tests for the decomposition layer (§5).
//!
//! * **Theorem 5.1 / Fig. 12**: for any (M, B), the XKeyword
//!   decomposition evaluates every CTSSN of size ≤ M with ≤ B joins.
//! * **Complete(L)**: covers every CTSSN of size ≤ L·(B+1) with ≤ B
//!   joins.
//! * **Tilings** are genuine edge partitions.
//! * **Unions** never lose coverage.

use proptest::prelude::*;
use xkeyword::core::decompose::{self, all_tilings, fragment_size_bound, min_tiles};
use xkeyword::core::tree::enumerate_trees;
use xkeyword::graph::TssGraph;

fn graphs() -> Vec<(&'static str, TssGraph)> {
    vec![
        ("dblp", xkeyword::datagen::dblp::tss_graph()),
        ("tpch", xkeyword::datagen::tpch::tss_graph()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Fig. 12 output covers everything within the B-join budget.
    #[test]
    fn xkeyword_decomposition_covers(m in 2usize..=5, b in 1usize..=3) {
        for (name, tss) in graphs() {
            let d = decompose::xkeyword(&tss, m, b);
            prop_assert!(
                d.covers_all(&tss, m, b),
                "{name} M={m} B={b} not covered"
            );
        }
    }

    /// Theorem 5.1 (path form): the complete decomposition with
    /// fragments of size ≤ L = ⌈M/(B+1)⌉ covers every *path* CTSSN of
    /// size ≤ M with ≤ B joins. Every two-keyword CTSSN is a path (two
    /// annotated leaves at most), which is the paper's evaluation
    /// setting. The unrestricted statement is false: a 6-edge spider of
    /// three 2-edge branches cannot be split into two connected parts of
    /// ≤ 3 edges, so it needs 2 joins no matter which ≤ L fragments
    /// exist — the Fig. 12 queue handles those shapes by adding larger
    /// fragments instead (see `xkeyword_decomposition_covers`).
    #[test]
    fn complete_covers_theorem_5_1_on_paths(m in 2usize..=6, b in 1usize..=3) {
        let l = fragment_size_bound(m, b);
        for (name, tss) in graphs() {
            let d = decompose::complete(&tss, l);
            for size in 1..=m {
                for t in enumerate_trees(&tss, size) {
                    let is_path = (0..t.roles.len() as u8)
                        .all(|r| t.incident(r).count() <= 2);
                    if !is_path {
                        continue;
                    }
                    let joins = d.joins_for(&t);
                    prop_assert!(
                        joins.is_some_and(|j| j <= b),
                        "{name} M={m} B={b} L={l}: path {} needs {joins:?} joins",
                        t.canonical()
                    );
                }
            }
        }
    }

    /// Minimal tilings are valid edge partitions with exactly size-many
    /// edges covered, and all_tilings members likewise.
    #[test]
    fn tilings_are_partitions(size in 1usize..=4, seed in 0usize..1000) {
        for (_, tss) in graphs() {
            let trees = enumerate_trees(&tss, size);
            if trees.is_empty() {
                continue;
            }
            let target = &trees[seed % trees.len()];
            let d = decompose::complete(&tss, 2);
            let full: u16 = ((1u32 << target.size()) - 1) as u16;
            if let Some(tiles) = min_tiles(target, &d.fragments) {
                let mut mask = 0u16;
                for t in &tiles {
                    prop_assert_eq!(mask & t.embedding.edge_mask, 0, "overlap");
                    mask |= t.embedding.edge_mask;
                }
                prop_assert_eq!(mask, full, "not a cover");
            }
            for tiles in all_tilings(target, &d.fragments, 50) {
                let mut mask = 0u16;
                for t in &tiles {
                    prop_assert_eq!(mask & t.embedding.edge_mask, 0);
                    mask |= t.embedding.edge_mask;
                }
                prop_assert_eq!(mask, full);
            }
        }
    }

    /// min_tiles is genuinely minimal among the enumerated tilings.
    #[test]
    fn min_tiles_is_minimum(size in 1usize..=4, seed in 0usize..1000) {
        for (_, tss) in graphs() {
            let trees = enumerate_trees(&tss, size);
            if trees.is_empty() {
                continue;
            }
            let target = &trees[seed % trees.len()];
            let d = decompose::complete(&tss, 2);
            let min = min_tiles(target, &d.fragments).map(|t| t.len());
            let best_enum = all_tilings(target, &d.fragments, 10_000)
                .iter()
                .map(Vec::len)
                .min();
            prop_assert_eq!(min, best_enum);
        }
    }

    /// Union of decompositions never increases join counts.
    #[test]
    fn union_monotone(size in 1usize..=4, seed in 0usize..1000) {
        for (_, tss) in graphs() {
            let a = decompose::minimal(&tss);
            let b = decompose::complete(&tss, 2);
            let u = a.union(&b, &tss);
            let trees = enumerate_trees(&tss, size);
            if trees.is_empty() {
                continue;
            }
            let t = &trees[seed % trees.len()];
            let ja = a.joins_for(t);
            let jb = b.joins_for(t);
            let ju = u.joins_for(t);
            if let (Some(ja), Some(ju)) = (ja, ju) {
                prop_assert!(ju <= ja);
            }
            if let (Some(jb), Some(ju)) = (jb, ju) {
                prop_assert!(ju <= jb);
            }
        }
    }

    /// Every enumerated tree validates; canonical labels are unique per
    /// enumeration batch.
    #[test]
    fn enumerated_trees_valid_and_distinct(size in 1usize..=4) {
        for (_, tss) in graphs() {
            let trees = enumerate_trees(&tss, size);
            let mut seen = std::collections::HashSet::new();
            for t in &trees {
                prop_assert_eq!(t.validate(&tss), Ok(()));
                prop_assert!(seen.insert(t.canonical()), "duplicate tree");
                prop_assert_eq!(t.size(), size);
            }
        }
    }
}

/// The minimal decomposition always exists and joins = size − 1.
#[test]
fn minimal_joins_formula() {
    for (_, tss) in graphs() {
        let d = decompose::minimal(&tss);
        for size in 1..=4 {
            for t in enumerate_trees(&tss, size) {
                assert_eq!(d.joins_for(&t), Some(size - 1));
            }
        }
    }
}
