//! End-to-end pipeline tests on DBLP-like data (the paper's evaluation
//! dataset): oracle agreement at small scale, engine-vs-engine agreement
//! across every decomposition at medium scale, top-k and presentation
//! sanity.

use xkeyword::core::exec::{self, ExecMode};
use xkeyword::core::prelude::*;
use xkeyword::core::relations::PhysicalPolicy;
use xkeyword::core::semantics::enumerate_mttons;
use xkeyword::core::xkeyword::DecompositionSpec;
use xkeyword::datagen::dblp::DblpConfig;

fn tiny() -> DblpConfig {
    DblpConfig {
        conferences: 2,
        years_per_conference: 2,
        papers_per_year: 5,
        authors: 12,
        authors_per_paper: 2,
        citations_per_paper: 2,
        vocabulary: 40,
        seed: 11,
    }
}

fn medium() -> DblpConfig {
    DblpConfig {
        conferences: 3,
        years_per_conference: 3,
        papers_per_year: 15,
        authors: 60,
        authors_per_paper: 3,
        citations_per_paper: 4,
        vocabulary: 100,
        seed: 12,
    }
}

fn load(cfg: &DblpConfig, spec: DecompositionSpec, policy: PhysicalPolicy) -> XKeyword {
    let d = cfg.generate();
    XKeyword::load(
        d.graph,
        d.tss,
        LoadOptions {
            decomposition: spec,
            policy,
            pool_pages: 512,
            ..LoadOptions::default()
        },
    )
    .unwrap()
}

/// Picks a keyword pair with results: two surnames sharing a paper.
fn coauthor_pair(xk: &XKeyword) -> (String, String) {
    let tss = &xk.tss;
    let paper = tss
        .node_ids()
        .find(|&i| tss.node(i).name == "Paper")
        .unwrap();
    for &p in xk.targets().tos_of(paper) {
        let authors: Vec<_> = xk
            .targets()
            .edges_out(p)
            .iter()
            .filter(|(e, _)| {
                let te = tss.edge(*e);
                tss.node(te.to).name == "Author"
            })
            .map(|&(_, a)| a)
            .collect();
        if authors.len() >= 2 {
            let la = xk.label(authors[0]);
            let lb = xk.label(authors[1]);
            let sa = la.split_whitespace().last().unwrap().trim_end_matches(']');
            let sb = lb.split_whitespace().last().unwrap().trim_end_matches(']');
            if sa != sb {
                return (sa.to_owned(), sb.to_owned());
            }
        }
    }
    panic!("no co-authored paper with distinct surnames");
}

/// At tiny scale, the full pipeline equals the brute-force §3.1 oracle
/// with Z = 6 on DBLP data (reference edges, citations, shared authors).
#[test]
fn oracle_agreement_small_dblp() {
    let xk = load(
        &tiny(),
        DecompositionSpec::XKeyword { m: 4, b: 2 },
        PhysicalPolicy::clustered(),
    );
    let (a, b) = coauthor_pair(&xk);
    let kws = [a.as_str(), b.as_str()];
    let got = xk
        .query_all(&kws, 6, ExecMode::Cached { capacity: 2048 })
        .mttons();
    let want = enumerate_mttons(&xk.graph(), &xk.targets(), &kws, 6);
    assert_eq!(got, want);
    assert!(!got.is_empty(), "co-authors must be connected");
    // The best result is the co-authored paper: aname-paper-aname = 4
    // schema edges.
    assert_eq!(got.iter().map(|m| m.score).min(), Some(4));
}

/// Every decomposition × policy combination returns the same result set
/// (cached, naive and hash-join engines included).
#[test]
fn all_decompositions_agree_on_medium_dblp() {
    let cfg = medium();
    let configs: Vec<(DecompositionSpec, PhysicalPolicy)> = vec![
        (DecompositionSpec::Minimal, PhysicalPolicy::clustered()),
        (DecompositionSpec::Minimal, PhysicalPolicy::indexed()),
        (DecompositionSpec::Minimal, PhysicalPolicy::bare()),
        (
            DecompositionSpec::Complete { l: 2 },
            PhysicalPolicy::clustered(),
        ),
        (
            DecompositionSpec::XKeyword { m: 5, b: 2 },
            PhysicalPolicy::clustered(),
        ),
        (
            DecompositionSpec::Combined { m: 5, b: 2 },
            PhysicalPolicy::clustered(),
        ),
    ];
    let mut reference: Option<Vec<Mtton>> = None;
    for (spec, policy) in configs {
        let xk = load(&cfg, spec.clone(), policy);
        let (a, b) = coauthor_pair(&xk);
        let kws = [a.as_str(), b.as_str()];
        for mode in [ExecMode::Naive, ExecMode::Cached { capacity: 4096 }] {
            let got = xk.query_all(&kws, 7, mode).mttons();
            match &reference {
                None => reference = Some(got),
                Some(want) => assert_eq!(&got, want, "{spec:?}/{policy:?}/{mode:?}"),
            }
        }
        let hash = xk.query_all_hash(&kws, 7).mttons();
        assert_eq!(&hash, reference.as_ref().unwrap(), "{spec:?} hash");
    }
    assert!(!reference.unwrap().is_empty());
}

/// Top-k returns k results, each a genuine result, biased toward small
/// scores (smaller CNs are scheduled first).
#[test]
fn topk_sanity() {
    let xk = load(
        &medium(),
        DecompositionSpec::Complete { l: 2 },
        PhysicalPolicy::clustered(),
    );
    let (a, b) = coauthor_pair(&xk);
    let kws = [a.as_str(), b.as_str()];
    let all = xk.query_all(&kws, 7, ExecMode::Cached { capacity: 4096 });
    let total = all.rows.len();
    assert!(total > 10);
    let k = 10;
    let top = xk.query_topk(&kws, 7, k, ExecMode::Cached { capacity: 4096 }, 4);
    assert_eq!(top.rows.len(), k);
    let valid: std::collections::HashSet<Mtton> = all.rows.iter().map(|r| r.to_mtton()).collect();
    for r in &top.rows {
        assert!(valid.contains(&r.to_mtton()));
    }
    // The minimum score must be found (smallest CN runs first).
    let best_all = all.rows.iter().map(|r| r.score).min().unwrap();
    let best_top = top.rows.iter().map(|r| r.score).min().unwrap();
    assert_eq!(best_all, best_top);
}

/// On-demand expansion keeps the §3.2 invariant on DBLP presentation
/// graphs and grows monotonically.
#[test]
fn presentation_expansion_dblp() {
    let xk = load(
        &medium(),
        DecompositionSpec::Combined { m: 5, b: 2 },
        PhysicalPolicy::clustered(),
    );
    let (a, b) = coauthor_pair(&xk);
    let kws = [a.as_str(), b.as_str()];
    let plans = xk.plans(&kws, 7);
    let res = xk.query_all(&kws, 7, ExecMode::Cached { capacity: 4096 });
    let pi = res.rows[0].plan;
    let mut pg = xk.initial_presentation(&plans, pi).expect("PG0");
    let initial = pg.len();
    let mut cache = exec::PartialCache::new(4096);
    for role in 0..plans[pi].role_count() as u8 {
        xk.expand(&kws, &plans, &mut pg, role, &mut cache);
        assert!(pg.invariant_holds(), "after expanding role {role}");
    }
    assert!(pg.len() >= initial);
    // Every node of every result of this CN is now displayed.
    for r in res.rows.iter().filter(|r| r.plan == pi) {
        for (role, &to) in r.assignment.iter().enumerate() {
            assert!(pg.contains((role as u8, to)));
        }
    }
}

/// BLOBs exist for every target object and parse back as XML fragments.
#[test]
fn blobs_round_trip() {
    let xk = load(
        &tiny(),
        DecompositionSpec::Minimal,
        PhysicalPolicy::clustered(),
    );
    for id in 0..xk.targets().len() as u32 {
        let blob = xk.blob(id).expect("blob");
        let parsed = xkeyword::graph::parse(&blob).expect("parses");
        assert!(parsed.node_count() >= 1);
    }
}

/// The load stage rejects data that does not classify against the schema.
#[test]
fn load_rejects_alien_data() {
    let mut g = xkeyword::graph::XmlGraph::new();
    g.add_node("alien", None);
    let err = XKeyword::load(
        g,
        xkeyword::datagen::dblp::tss_graph(),
        LoadOptions::default(),
    );
    assert!(err.is_err());
}
