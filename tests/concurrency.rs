//! Concurrency tests: many client threads hammering one shared
//! [`QueryEngine`], the sharded buffer pool's equivalence with a
//! single-lock pool, top-k determinism across worker-thread counts, and
//! the cold-start contract of [`BufferPool::clear`].

use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use xkeyword::core::exec::ExecMode;
use xkeyword::core::prelude::*;
use xkeyword::core::xkeyword::DecompositionSpec;
use xkeyword::datagen::tpch;
use xkeyword::store::{BufferPool, Disk, PageId, PAGE_U32S};

fn load_figure1() -> XKeyword {
    let (graph, _, _) = tpch::figure1();
    XKeyword::load(
        graph,
        tpch::tss_graph(),
        LoadOptions {
            decomposition: DecompositionSpec::XKeyword { m: 6, b: 2 },
            pool_pages: 64,
            pool_shards: 8,
            ..LoadOptions::default()
        },
    )
    .unwrap()
}

/// Eight clients pull a mixed stream of known and unknown keyword
/// queries off a shared queue against one engine. Every known query must
/// return exactly the single-threaded reference rows, unknown keywords
/// must keep reporting their typed error, and the per-thread
/// `local_snapshot` I/O deltas must add up to the pool's global delta —
/// the sharded pool may not lose or invent I/O under concurrency.
#[test]
fn stress_shared_engine_eight_threads() {
    let xk = load_figure1();
    let engine = xk.engine();
    let queries: &[&[&str]] = &[
        &["john", "vcr"],
        &["us", "vcr"],
        &["john", "us"],
        &["florp"],          // unknown keyword
        &["john", "zzzzzz"], // known + unknown
        &["tv"],
    ];
    // Single-threaded reference results (unknowns recorded as None).
    let reference: Vec<Option<Vec<_>>> = queries
        .iter()
        .map(|kws| {
            engine
                .query_all(kws, 8, ExecMode::Cached { capacity: 1024 })
                .ok()
                .map(|o| o.results.rows)
        })
        .collect();

    const THREADS: usize = 8;
    const TOTAL: usize = 240;
    let global_before = xk.db.io();
    let next = AtomicUsize::new(0);
    let local_deltas: Vec<(u64, u64)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                s.spawn(|| {
                    let before = xk.db.local_io();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= TOTAL {
                            break;
                        }
                        let kws = queries[i % queries.len()];
                        let got = engine
                            .query_all(kws, 8, ExecMode::Cached { capacity: 1024 })
                            .ok()
                            .map(|o| o.results.rows);
                        assert_eq!(
                            got,
                            reference[i % queries.len()],
                            "thread-shared query {kws:?} diverged from reference"
                        );
                    }
                    let d = xk.db.local_io().since(before);
                    (d.hits, d.misses)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let global = xk.db.io().since(global_before);
    let (hits, misses) = local_deltas
        .iter()
        .fold((0, 0), |(h, m), &(dh, dm)| (h + dh, m + dm));
    assert_eq!(
        (hits, misses),
        (global.hits, global.misses),
        "per-thread I/O attributions must sum to the pool's global delta"
    );
    assert!(global.logical() > 0, "the stress run must touch the pool");
}

/// `query_topk` must return the identical result set no matter how many
/// worker threads evaluate the plans — the paper-example queries at
/// several `k`, threads ∈ {1, 2, 8}.
#[test]
fn topk_deterministic_across_thread_counts() {
    let xk = load_figure1();
    let engine = xk.engine();
    for kws in [&["john", "vcr"][..], &["us", "vcr"], &["john", "us"]] {
        for k in [1usize, 3, 10, 10_000] {
            let reference = engine
                .query_topk(kws, 8, k, ExecMode::Cached { capacity: 1024 }, 1)
                .unwrap();
            for threads in [2usize, 8] {
                let got = engine
                    .query_topk(kws, 8, k, ExecMode::Cached { capacity: 1024 }, threads)
                    .unwrap();
                assert_eq!(
                    got.results.rows, reference.results.rows,
                    "top-{k} of {kws:?} diverged at {threads} threads"
                );
                assert_eq!(got.mttons, reference.mttons);
            }
        }
    }
}

/// After `clear` the pool must serve from a cold state (every resident
/// page gone, next fetches are misses) while queries still return the
/// same rows.
#[test]
fn clear_cold_starts_without_changing_results() {
    let xk = load_figure1();
    let engine = xk.engine();
    let warm = engine
        .query_all(&["john", "vcr"], 8, ExecMode::Naive)
        .unwrap();
    let before = xk.db.io();
    xk.db.pool().clear();
    assert_eq!(xk.db.pool().resident(), 0, "clear must empty every shard");
    let cold = engine
        .query_all(&["john", "vcr"], 8, ExecMode::Naive)
        .unwrap();
    assert_eq!(cold.results.rows, warm.results.rows);
    let after = xk.db.io().since(before);
    assert!(
        after.misses > 0,
        "a cleared pool must re-read pages from disk"
    );
}

/// Builds a disk of `pages` pages whose first word is the page number.
fn disk_with(pages: usize) -> (Disk, Vec<PageId>) {
    let disk = Disk::new();
    let ids = (0..pages)
        .map(|i| {
            let mut data = [0u32; PAGE_U32S];
            data[0] = i as u32;
            disk.append(data)
        })
        .collect();
    (disk, ids)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For any access sequence and any capacity/shard split, a sharded
    /// pool serves byte-identical pages to a single-lock pool over the
    /// same disk, and both account every access as a hit or a miss.
    #[test]
    fn sharded_pool_matches_single_lock_pool(
        accesses in proptest::collection::vec(0usize..48, 1..200),
        capacity in 1usize..64,
        shards in 1usize..16,
    ) {
        let (disk, ids) = disk_with(48);
        let single = BufferPool::with_shards(capacity, 1);
        let sharded = BufferPool::with_shards(capacity, shards);
        for &a in &accesses {
            let want = disk.read(ids[a]);
            let from_single = single.fetch(&disk, ids[a]);
            let from_sharded = sharded.fetch(&disk, ids[a]);
            prop_assert_eq!(&from_single, &want);
            prop_assert_eq!(&from_sharded, &want);
        }
        prop_assert_eq!(single.snapshot().logical(), accesses.len() as u64);
        prop_assert_eq!(sharded.snapshot().logical(), accesses.len() as u64);
    }
}

/// One shared instance per postings format for the top-k oracle
/// proptest — loading Figure 1 per case would dominate the run.
fn shared_figure1(format: PostingsFormatKind) -> &'static XKeyword {
    static RAW: std::sync::OnceLock<XKeyword> = std::sync::OnceLock::new();
    static PACKED: std::sync::OnceLock<XKeyword> = std::sync::OnceLock::new();
    let cell = match format {
        PostingsFormatKind::Raw => &RAW,
        PostingsFormatKind::Packed => &PACKED,
    };
    cell.get_or_init(|| {
        let (graph, _, _) = tpch::figure1();
        XKeyword::load(
            graph,
            tpch::tss_graph(),
            LoadOptions {
                decomposition: DecompositionSpec::XKeyword { m: 6, b: 2 },
                pool_pages: 64,
                pool_shards: 8,
                postings_format: format,
                ..LoadOptions::default()
            },
        )
        .unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The byte-identity pin of the top-k early-termination work: for
    /// every query shape, pruned top-k ≡ unpruned top-k ≡ the brute-force
    /// oracle (full evaluation sorted by `(score, plan, assignment)` and
    /// truncated to k), at 1/2/8 worker threads, k ∈ {1, 5, 20}, in both
    /// postings formats. Pruning may only change how much work is *not*
    /// done — never a returned row.
    #[test]
    fn pruned_topk_equals_unpruned_and_brute_force_oracle(qi in 0usize..5) {
        let queries: [&[&str]; 5] = [
            &["john", "vcr"],
            &["us", "vcr"],
            &["john", "us"],
            &["tv"],
            &["vcr", "dvd"],
        ];
        let kws = queries[qi];
        let mode = ExecMode::Cached { capacity: 1024 };
        for format in [PostingsFormatKind::Raw, PostingsFormatKind::Packed] {
            let engine = shared_figure1(format).engine();
            let mut oracle = engine.query_all(kws, 8, mode).unwrap().results.rows;
            oracle.sort_by(|a, b| {
                (a.score, a.plan, &a.assignment).cmp(&(b.score, b.plan, &b.assignment))
            });
            for k in [1usize, 5, 20] {
                let mut want = oracle.clone();
                want.truncate(k);
                for threads in [1usize, 2, 8] {
                    for prune in [true, false] {
                        let got = engine
                            .query_topk_opts(kws, 8, k, mode, threads, None, prune)
                            .unwrap();
                        prop_assert_eq!(
                            &got.results.rows,
                            &want,
                            "{:?} diverged: {} k={} threads={} prune={}",
                            kws, format, k, threads, prune
                        );
                        prop_assert_eq!(got.results.prune.enabled, prune);
                    }
                }
            }
        }
    }
}
