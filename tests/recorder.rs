//! Flight-recorder tests: recording is invisible to query semantics
//! (byte-identical results recorder on/off across thread counts and
//! postings formats), slow and deadline-degraded queries are
//! force-captured into the slow log with a deferred EXPLAIN whose
//! per-operator I/O decomposes the capture totals, and the record ring
//! never grows past its configured capacity.

use std::time::{Duration, Instant};
use xkeyword::core::exec::ExecMode;
use xkeyword::core::prelude::*;
use xkeyword::core::xkeyword::DecompositionSpec;
use xkeyword::datagen::tpch;
use xkeyword::store::{FaultSpec, FaultTarget};

fn cached() -> ExecMode {
    ExecMode::Cached { capacity: 1024 }
}

fn fig1(format: PostingsFormatKind, pool_pages: usize) -> XKeyword {
    let (graph, _, _) = tpch::figure1();
    XKeyword::load(
        graph,
        tpch::tss_graph(),
        LoadOptions {
            decomposition: DecompositionSpec::XKeyword { m: 6, b: 2 },
            pool_pages,
            postings_format: format,
            ..LoadOptions::default()
        },
    )
    .unwrap()
}

const QUERIES: [&[&str]; 4] = [&["john", "vcr"], &["us", "vcr"], &["john", "us"], &["tv"]];

/// Recording must never influence answers: for every query, thread
/// count and postings format, rows with the recorder enabled (and
/// sampling forced to 1-in-1) are byte-identical to rows with the
/// recorder off, and repeated runs agree on the stored result digest.
#[test]
fn results_are_byte_identical_with_recorder_on_or_off() {
    for format in [PostingsFormatKind::Raw, PostingsFormatKind::Packed] {
        let xk = fig1(format, 64);
        let engine = xk.engine();
        let recorder = engine.recorder();
        assert!(recorder.enabled(), "recording is on by default");

        // Baseline rows with the recorder off.
        recorder.set_enabled(false);
        let mut want = Vec::new();
        for q in QUERIES {
            want.push(engine.query_all(q, 8, cached()).unwrap().results.rows);
        }
        assert_eq!(recorder.len(), 0, "a disabled recorder must stay empty");

        // Recorder on, sampling every query, across thread counts.
        recorder.set_enabled(true);
        recorder.set_sample_every(1);
        for threads in [1usize, 2, 8] {
            engine.set_exec_threads(threads);
            let mut digests = Vec::new();
            for (q, want_rows) in QUERIES.iter().zip(&want) {
                let out = engine.query_all(q, 8, cached()).unwrap();
                assert_eq!(
                    &out.results.rows, want_rows,
                    "rows diverged with recorder on: format={format:?} threads={threads}"
                );
                let rec = recorder.records().into_iter().last().unwrap();
                assert_eq!(rec.rows, want_rows.len());
                assert_eq!(
                    rec.postings,
                    if format == PostingsFormatKind::Raw {
                        "raw"
                    } else {
                        "packed"
                    }
                );
                digests.push(rec.result_digest);
            }
            // Same queries at any thread count → same digests.
            if threads == 1 {
                continue;
            }
            let single: Vec<u64> = {
                engine.set_exec_threads(1);
                QUERIES
                    .iter()
                    .map(|q| {
                        engine.query_all(q, 8, cached()).unwrap();
                        recorder.records().into_iter().last().unwrap().result_digest
                    })
                    .collect()
            };
            assert_eq!(digests, single, "digest must be thread-count invariant");
        }
    }
}

/// A deadline-degraded query is force-captured: its record lands in the
/// slow log carrying a [`xkeyword::obs::DegradationSummary`] that
/// matches the outcome's own degradation report, and exporting the log
/// attaches a deferred EXPLAIN whose per-operator I/O decomposes the
/// capture's totals even though plans were skipped.
#[test]
fn deadline_degraded_query_is_forced_into_the_slow_log() {
    let xk = fig1(PostingsFormatKind::Raw, 2);
    // Installed after load so the stalls only tax the query path.
    xk.db
        .install_faults(FaultSpec::new(0x5EED).slow(FaultTarget::All, 1.0, 100_000_000));
    let engine = xk.engine();
    let recorder = engine.recorder();

    let deadline = Duration::from_millis(250);
    let res = engine.query_all_within(&["john", "vcr"], 8, cached(), Some(deadline));
    let rec = recorder
        .records()
        .into_iter()
        .last()
        .expect("every query must leave a record");
    assert!(rec.forced, "a degraded query must be force-captured");
    assert_eq!(rec.deadline_ns, Some(deadline.as_nanos() as u64));
    assert!(
        recorder.slow_records(10).iter().any(|r| r.id == rec.id),
        "forced records must surface in the slow log"
    );

    match res {
        Ok(out) => {
            let want = &out.results.degradation;
            let got = rec
                .degradation
                .as_ref()
                .expect("degradation must be recorded");
            assert!(got.deadline_exceeded, "slow pages must trip the deadline");
            assert_eq!(got.deadline_exceeded, want.deadline_exceeded);
            assert_eq!(got.plans_skipped, want.plans_skipped);
            assert_eq!(got.plans_incomplete, want.plans_incomplete);
            assert_eq!(got.retries, want.retries);
            assert!(
                rec.needs_explain,
                "forced success awaits a deferred EXPLAIN"
            );

            // Export triggers the deferred capture; the re-run honors the
            // original deadline, so skipped plans show zero-I/O profiles
            // and the decomposition stays exact.
            let t0 = Instant::now();
            let jsonl = engine.export_query_log();
            assert!(
                t0.elapsed() <= deadline * 4,
                "deferred capture must honor the recorded deadline"
            );
            let rec = recorder
                .records()
                .into_iter()
                .find(|r| r.id == rec.id)
                .unwrap();
            assert!(!rec.needs_explain);
            let explain = rec.explain.as_ref().expect("export must attach EXPLAIN");
            assert_eq!(
                explain.io_total(),
                explain.io_hits + explain.io_misses,
                "per-operator I/O must decompose the capture totals"
            );
            let line = jsonl
                .lines()
                .find(|l| l.starts_with(&format!("{{\"id\":{}", rec.id)))
                .expect("exported JSONL must carry the degraded query");
            assert!(line.contains("\"degraded\":{"), "{line}");
            assert!(line.contains("\"explain\":{"), "{line}");
        }
        // Nothing produced in time: recorded as a forced error instead.
        Err(XkError::DeadlineExceeded) => {
            assert!(rec.error.is_some(), "failed queries must record the error");
            assert!(!rec.needs_explain, "error records never re-run the query");
        }
        Err(other) => panic!("expected degraded result or DeadlineExceeded, got {other:?}"),
    }
}

/// A query over the slow threshold is force-captured with a pending
/// EXPLAIN; `capture_pending_explains` attaches a profile off the
/// serving path (engine query counters must not move) whose operator
/// I/O decomposes the capture totals — on both the exhaustive and the
/// pruned top-k entry points.
#[test]
fn slow_queries_get_a_deferred_explain_that_decomposes_io() {
    let xk = fig1(PostingsFormatKind::Packed, 64);
    let engine = xk.engine();
    let recorder = engine.recorder();
    recorder.set_slow_threshold_ns(1); // everything is slow

    engine.query_all(&["john", "vcr"], 8, cached()).unwrap();
    engine
        .query_topk(&["us", "vcr"], 8, 3, cached(), 2)
        .unwrap();
    let pending: Vec<u64> = recorder
        .records()
        .iter()
        .filter(|r| r.needs_explain)
        .map(|r| r.id)
        .collect();
    assert_eq!(pending.len(), 2, "both slow queries must await EXPLAIN");

    let queries_before = engine.stats().queries;
    let captured = engine.capture_pending_explains();
    assert_eq!(captured, 2);
    assert_eq!(
        engine.stats().queries,
        queries_before,
        "deferred captures must not count as served queries"
    );

    for rec in recorder.records() {
        assert!(rec.slow && rec.forced);
        assert!(!rec.needs_explain);
        let explain = rec.explain.as_ref().expect("capture must attach EXPLAIN");
        assert_eq!(explain.profiles.len(), rec.plans);
        assert_eq!(
            explain.io_total(),
            explain.io_hits + explain.io_misses,
            "path {}: per-operator I/O must decompose the capture totals",
            rec.path
        );
        assert!(explain.io_total() > 0, "fig1 queries touch the pool");
    }

    // The slow-table render includes both entries; re-export is stable.
    let table = engine.slow_log(10);
    assert!(table.contains("john vcr"), "{table}");
    assert!(table.contains("us vcr"), "{table}");
    let jsonl = engine.export_query_log();
    assert_eq!(jsonl.lines().count(), recorder.len());
    for line in jsonl.lines() {
        assert!(line.starts_with("{\"id\":"), "malformed JSONL line: {line}");
        assert!(line.ends_with('}'), "malformed JSONL line: {line}");
    }
}

/// The record ring is bounded: pushing far more queries than the
/// configured capacity retains exactly `capacity` records while the
/// appended counter keeps the true total.
#[test]
fn record_ring_never_exceeds_capacity() {
    let xk = fig1(PostingsFormatKind::Raw, 64);
    let engine = xk.engine();
    let recorder = engine.recorder();
    let capacity = recorder.capacity();
    let total = capacity + capacity / 2;
    for _ in 0..total {
        engine.query_all(&["tv"], 8, cached()).unwrap();
    }
    assert_eq!(recorder.appended(), total as u64);
    assert_eq!(recorder.len(), capacity, "ring must saturate at capacity");
    assert_eq!(recorder.records().len(), capacity);
    // Survivors are the most recent records.
    let min_id = recorder.records().iter().map(|r| r.id).min().unwrap();
    assert!(
        min_id > (total - capacity) as u64 / 2,
        "evictions must discard the oldest records first (min surviving id {min_id})"
    );
}
