//! Correctness harness for the packed containing-list format:
//!
//! * property tests that `PackedPostings` round-trips arbitrary posting
//!   lists exactly (iteration and skip-ahead both agree with the raw
//!   layout), and
//! * a fig15a-shape determinism harness asserting query results are
//!   byte-identical between the raw and packed master-index formats at
//!   1, 2 and 8 execution threads — the PR 2 thread-count guarantee
//!   doubling as the storage-format correctness oracle.

use proptest::prelude::*;
use xkeyword::core::exec::ExecMode;
use xkeyword::core::postings::{Posting, PostingsFormat, PostingsFormatKind, PostingsList};
use xkeyword::core::prelude::*;
use xkeyword::core::xkeyword::DecompositionSpec;
use xkeyword::datagen::dblp::DblpConfig;
use xkeyword::graph::{NodeId, SchemaNodeId};

/// Builds postings from primitive triples: dense ids exercise narrow
/// bitpack widths, full-range ids the wide/straddling paths.
fn postings(triples: &[(u32, u32, u16)]) -> Vec<Posting> {
    triples
        .iter()
        .map(|&(to, node, sn)| Posting {
            to,
            node: NodeId(node),
            schema_node: SchemaNodeId(sn),
        })
        .collect()
}

fn sort_key(p: &Posting) -> (u32, NodeId, SchemaNodeId) {
    (p.to, p.node, p.schema_node)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn packed_round_trips_arbitrary_lists(
        dense in prop::collection::vec((0u32..2_000, 0u32..10_000, 0u16..32), 0..400),
        wild in prop::collection::vec((any::<u32>(), any::<u32>(), any::<u16>()), 0..200),
    ) {
        let mut list = postings(&dense);
        list.extend(postings(&wild));
        let mut expect = list.clone();
        expect.sort_unstable_by_key(sort_key);
        let packed = PostingsList::build(list.clone(), PostingsFormatKind::Packed);
        let raw = PostingsList::build(list, PostingsFormatKind::Raw);
        prop_assert_eq!(packed.len(), expect.len());
        prop_assert_eq!(packed.size_bytes() > 0, !expect.is_empty());
        let decoded: Vec<Posting> = packed.iter().collect();
        prop_assert_eq!(&decoded, &expect);
        let raw_side: Vec<Posting> = raw.iter().collect();
        prop_assert_eq!(&raw_side, &expect);
    }

    #[test]
    fn seek_agrees_with_linear_filter(
        dense in prop::collection::vec((0u32..2_000, 0u32..10_000, 0u16..32), 0..400),
        wild in prop::collection::vec((any::<u32>(), any::<u32>(), any::<u16>()), 0..100),
        dense_min in 0u32..2_000,
        wild_min in any::<u32>(),
    ) {
        let mut list = postings(&dense);
        list.extend(postings(&wild));
        let mut sorted = list.clone();
        sorted.sort_unstable_by_key(sort_key);
        for min_to in [dense_min, wild_min, 0, u32::MAX] {
            let expect: Vec<Posting> =
                sorted.iter().copied().filter(|p| p.to >= min_to).collect();
            for kind in [PostingsFormatKind::Raw, PostingsFormatKind::Packed] {
                let built = PostingsList::build(list.clone(), kind);
                let got: Vec<Posting> = built.seek(min_to).collect();
                prop_assert_eq!(&got, &expect, "{} seek({})", kind, min_to);
            }
        }
    }
}

/// A fig15a-shape DBLP instance: bench-scale citation structure, small
/// enough for the test budget.
fn fig15a_config() -> DblpConfig {
    DblpConfig {
        conferences: 3,
        years_per_conference: 3,
        papers_per_year: 15,
        authors: 60,
        authors_per_paper: 3,
        citations_per_paper: 4,
        vocabulary: 100,
        seed: 12,
    }
}

fn load(format: PostingsFormatKind) -> XKeyword {
    let d = fig15a_config().generate();
    XKeyword::load(
        d.graph,
        d.tss,
        LoadOptions {
            decomposition: DecompositionSpec::XKeyword { m: 5, b: 2 },
            pool_pages: 512,
            postings_format: format,
            ..LoadOptions::default()
        },
    )
    .unwrap()
}

/// Two author surnames sharing a paper — a query guaranteed to produce
/// results, mirroring the paper's author-pair workload.
fn coauthor_pair(xk: &XKeyword) -> (String, String) {
    let tss = &xk.tss;
    let paper = tss
        .node_ids()
        .find(|&i| tss.node(i).name == "Paper")
        .unwrap();
    for &p in xk.targets().tos_of(paper) {
        let authors: Vec<_> = xk
            .targets()
            .edges_out(p)
            .iter()
            .filter(|(e, _)| tss.node(tss.edge(*e).to).name == "Author")
            .map(|&(_, a)| a)
            .collect();
        if authors.len() >= 2 {
            let la = xk.label(authors[0]);
            let lb = xk.label(authors[1]);
            let sa = la.split_whitespace().last().unwrap().trim_end_matches(']');
            let sb = lb.split_whitespace().last().unwrap().trim_end_matches(']');
            if sa != sb {
                return (sa.to_owned(), sb.to_owned());
            }
        }
    }
    panic!("no co-authored paper with distinct surnames");
}

/// Raw and packed indexes hold identical containing lists, and query
/// results — full enumeration, hash joins and top-k — are byte-identical
/// between the two formats at 1, 2 and 8 execution threads.
#[test]
fn results_identical_raw_vs_packed_at_1_2_8_threads() {
    let raw = load(PostingsFormatKind::Raw);
    let packed = load(PostingsFormatKind::Packed);
    assert_eq!(raw.master().format(), PostingsFormatKind::Raw);
    assert_eq!(packed.master().format(), PostingsFormatKind::Packed);
    assert_eq!(
        raw.master().posting_count(),
        packed.master().posting_count()
    );
    assert!(
        packed.master().postings_bytes() < raw.master().postings_bytes(),
        "packed ({}) must undercut raw ({})",
        packed.master().postings_bytes(),
        raw.master().postings_bytes()
    );

    let (a, b) = coauthor_pair(&raw);
    assert_eq!((a.clone(), b.clone()), coauthor_pair(&packed));
    let kws = [a.as_str(), b.as_str()];
    assert_eq!(
        raw.master().containing_list(&a).to_vec(),
        packed.master().containing_list(&a).to_vec()
    );

    for threads in [1usize, 2, 8] {
        raw.engine().set_exec_threads(threads);
        packed.engine().set_exec_threads(threads);
        let mode = ExecMode::Cached { capacity: 4096 };

        let r = raw.query_all(&kws, 7, mode);
        let p = packed.query_all(&kws, 7, mode);
        assert_eq!(r.rows, p.rows, "query_all rows, {threads} threads");
        assert!(!r.rows.is_empty(), "harness must not be vacuous");

        let rh = raw.query_all_hash(&kws, 7);
        let ph = packed.query_all_hash(&kws, 7);
        assert_eq!(rh.rows, ph.rows, "hash rows, {threads} threads");

        let rt = raw.query_topk(&kws, 7, 10, mode, threads);
        let pt = packed.query_topk(&kws, 7, 10, mode, threads);
        assert_eq!(rt.rows, pt.rows, "topk rows, {threads} threads");
        assert_eq!(rt.mttons(), pt.mttons(), "topk mttons, {threads} threads");
    }
}
