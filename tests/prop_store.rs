//! Property tests for the substrates: storage access paths agree with
//! each other, and the XML writer/parser round-trips generated data.

use proptest::prelude::*;
use xkeyword::datagen::tpch::TpchConfig;
use xkeyword::graph::{parse, writer};
use xkeyword::store::{hash_join, BlobStore, Db, PhysicalOptions, Row, StoreError};

fn rows_strategy() -> impl Strategy<Value = Vec<(u32, u32, u32)>> {
    prop::collection::vec((0u32..40, 0u32..40, 0u32..1000), 0..300)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Clustered, indexed and heap tables answer every probe identically
    /// (up to row order).
    #[test]
    fn access_paths_agree(data in rows_strategy(), probe_col in 0usize..2, key in 0u32..45) {
        let rows: Vec<Row> = data.iter().map(|&(a, b, c)| vec![a, b, c].into()).collect();
        let db = Db::new(32);
        let clustered = db.create_table(
            "c", 3, rows.clone(), PhysicalOptions::clustered(&[probe_col]),
        );
        let indexed = db.create_table("i", 3, rows.clone(), PhysicalOptions::indexed_all(3));
        let heap = db.create_table("h", 3, rows.clone(), PhysicalOptions::heap());
        let expect: Vec<Row> = {
            let mut v: Vec<Row> = rows
                .iter()
                .filter(|r| r[probe_col] == key)
                .cloned()
                .collect();
            v.sort();
            v
        };
        for t in [&clustered, &indexed, &heap] {
            let (mut got, _) = db.probe(t, &[probe_col], &[key]);
            got.sort();
            prop_assert_eq!(&got, &expect, "table {}", t.name());
        }
        // Scans return everything.
        prop_assert_eq!(db.scan_all(&heap).len(), rows.len());
        prop_assert_eq!(db.scan_all(&clustered).len(), rows.len());
    }

    /// hash_join equals the nested-loop definition of a join.
    #[test]
    fn hash_join_is_a_join(left in rows_strategy(), right in rows_strategy()) {
        let l: Vec<Row> = left.iter().map(|&(a, b, c)| vec![a, b, c].into()).collect();
        let r: Vec<Row> = right.iter().map(|&(a, b, c)| vec![a, b, c].into()).collect();
        let mut got = hash_join(&l, &[0], &r, &[1]);
        got.sort();
        let mut want: Vec<Row> = Vec::new();
        for x in &l {
            for y in &r {
                if x[0] == y[1] {
                    let mut row = x.to_vec();
                    row.extend_from_slice(y);
                    want.push(row.into());
                }
            }
        }
        want.sort();
        prop_assert_eq!(got, want);
    }

    /// Multi-column probes equal filter semantics.
    #[test]
    fn composite_probe_agrees(data in rows_strategy(), k0 in 0u32..45, k1 in 0u32..45) {
        let rows: Vec<Row> = data.iter().map(|&(a, b, c)| vec![a, b, c].into()).collect();
        let db = Db::new(32);
        let t = db.create_table("t", 3, rows.clone(), PhysicalOptions::clustered(&[0, 1, 2]));
        let (mut got, _) = db.probe(&t, &[0, 1], &[k0, k1]);
        got.sort();
        let mut want: Vec<Row> = rows
            .iter()
            .filter(|r| r[0] == k0 && r[1] == k1)
            .cloned()
            .collect();
        want.sort();
        prop_assert_eq!(got, want);
    }

    /// BLOB round trips survive interleaved fetches of ids that were
    /// never stored: present ids come back byte-identical, absent ids
    /// come back as typed [`StoreError::MissingBlob`] errors naming the
    /// id — never a panic, never someone else's bytes.
    #[test]
    fn blob_round_trip_with_interleaved_missing_ids(
        stored in prop::collection::vec((0u32..64, prop::collection::vec(0u8..=255, 0..48)), 0..40),
        lookups in prop::collection::vec(0u32..128, 1..80),
    ) {
        let blobs = BlobStore::new();
        // Later puts replace earlier ones — mirror that in the model.
        let mut model = std::collections::HashMap::new();
        for (id, bytes) in &stored {
            blobs.put(*id, bytes.clone());
            model.insert(*id, bytes.clone());
        }
        prop_assert_eq!(blobs.len(), model.len());
        for id in lookups {
            match (blobs.try_get(id), model.get(&id)) {
                (Ok(bytes), Some(want)) => prop_assert_eq!(bytes.as_ref(), &want[..]),
                (Err(e), None) => prop_assert_eq!(e, StoreError::MissingBlob(id)),
                (got, want) => prop_assert!(
                    false,
                    "blob {} mismatch: got {:?}, model has {:?}",
                    id, got.map(|b| b.len()), want.map(Vec::len)
                ),
            }
        }
    }

    /// Generated XML data survives a write→parse round trip with node and
    /// edge counts intact.
    #[test]
    fn xml_round_trip(seed in 0u64..5000, persons in 2usize..6) {
        let data = TpchConfig {
            persons,
            parts: 6,
            orders_per_person: 2,
            lineitems_per_order: 2,
            subparts_per_part: 1,
            product_line_pct: 50,
            service_calls_per_person: 1,
            seed,
        }
        .generate();
        let text = writer::write_graph(&data.graph);
        let back = parse(&text).unwrap();
        prop_assert_eq!(back.node_count(), data.graph.node_count());
        prop_assert_eq!(back.edge_count(), data.graph.edge_count());
        // Tag multiset preserved.
        let tags = |g: &xkeyword::graph::XmlGraph| {
            let mut v: Vec<String> = g.node_ids().map(|n| g.tag(n).to_owned()).collect();
            v.sort();
            v
        };
        prop_assert_eq!(tags(&back), tags(&data.graph));
    }
}
