//! The declarative query layer over XKeyword's own connection relations:
//! §2's "addition of structured querying capabilities in the future" —
//! structured queries and keyword queries share one store.

use xkeyword::core::prelude::*;
use xkeyword::core::xkeyword::DecompositionSpec;
use xkeyword::datagen::tpch;
use xkeyword::store::Query;

fn load() -> XKeyword {
    let (graph, _, _) = tpch::figure1();
    XKeyword::load(
        graph,
        tpch::tss_graph(),
        LoadOptions {
            decomposition: DecompositionSpec::Minimal,
            ..LoadOptions::default()
        },
    )
    .unwrap()
}

/// Finds the physical table name of the minimal fragment for a TSS edge
/// between two named segments.
fn edge_table(xk: &XKeyword, from: &str, to: &str) -> String {
    let seg = |n: &str| {
        xk.tss
            .node_ids()
            .find(|&i| xk.tss.node(i).name == n)
            .unwrap()
    };
    let (f, t) = (seg(from), seg(to));
    let idx = xk
        .catalog()
        .decomposition
        .fragments
        .iter()
        .position(|fr| fr.tree.roles == vec![f, t])
        .unwrap_or_else(|| panic!("no fragment {from}->{to}"));
    // Clustered policy stores copies named `cr.<frag>@c<i>`.
    format!("cr.{}@c0", xk.catalog().decomposition.fragments[idx].name)
}

#[test]
fn structured_join_over_connection_relations() {
    let xk = load();
    // "Which persons supplied a lineitem whose order was placed by
    // Mike?" — a structured query over the Lineitem→Person (supplier)
    // and Order→Lineitem and Person→Order relations.
    let lp = edge_table(&xk, "Lineitem", "Person");
    let ol = edge_table(&xk, "Order", "Lineitem");
    let po = edge_table(&xk, "Person", "Order");
    // Mike's person TO id:
    let mike = xk
        .master()
        .containing_list("mike")
        .first()
        .map(|p| p.to)
        .unwrap();
    let rows = Query::new()
        .table("po", &po)
        .table("ol", &ol)
        .table("lp", &lp)
        .join(("po", 1), ("ol", 0))
        .join(("ol", 1), ("lp", 0))
        .filter(("po", 0), mike)
        .select(&[("lp", 1)])
        .run(&xk.db)
        .unwrap();
    // Mike's order o1 has three lineitems, all supplied by John.
    assert_eq!(rows.len(), 3);
    let john = xk
        .master()
        .containing_list("john")
        .first()
        .map(|p| p.to)
        .unwrap();
    assert!(rows.iter().all(|r| r[0] == john));
}

#[test]
fn structured_count_matches_target_graph() {
    let xk = load();
    // The supplier relation has one row per lineitem.
    let lp = edge_table(&xk, "Lineitem", "Person");
    let rows = Query::new().table("lp", &lp).run(&xk.db).unwrap();
    let li_seg = xk
        .tss
        .node_ids()
        .find(|&i| xk.tss.node(i).name == "Lineitem")
        .unwrap();
    assert_eq!(rows.len(), xk.targets().tos_of(li_seg).len());
}
