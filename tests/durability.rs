//! Durable write-path acceptance suite (DESIGN.md §12).
//!
//! The properties under test:
//!
//! 1. **Crash-point recovery** — for a fixed mutation history, crash the
//!    WAL at *every* record boundary (nothing written, a short record, a
//!    torn record), reopen from the surviving log, and the recovered
//!    instance answers every query byte-identically to an oracle
//!    bulk-loaded from exactly the surviving documents — in both
//!    postings formats and at every exec thread count.
//! 2. **Torn tails truncate, never corrupt** — garbage appended to the
//!    log is cut off at the first bad checksum on reopen; the valid
//!    prefix replays in full.
//! 3. **Incremental ≡ bulk** — any random insert/delete history applied
//!    incrementally matches a from-scratch bulk rebuild of the net
//!    document set (proptest).
//! 4. **Recovery is observable** — replays are counted in the published
//!    metrics (`xkw_recoveries_total`, `xkw_docs_total`, `xkw_wal_*`).
//!
//! CI runs this suite across the same `XKW_EXEC_THREADS` /
//! `XKW_POSTINGS` matrix as the fault-injection suite; without the env
//! vars the tests sweep 1/2/8 threads and both formats internally.

use proptest::prelude::*;
use std::path::PathBuf;
use xkeyword::core::prelude::*;
use xkeyword::core::xkeyword::WAL_FILE;
use xkeyword::store::{FaultKind, WalFault};

const BASE: &str = "<bib>\
    <paper><title>xml keyword search</title><author>jones</author></paper>\
    <paper><title>graph proximity</title><author>smith</author></paper>\
    </bib>";

/// Documents the histories ingest — each a complete `<bib>` subtree.
const DOCS: [&str; 3] = [
    "<bib><paper><title>proximity ranking</title><author>royce</author></paper></bib>",
    "<bib><paper><title>incremental indexing</title><author>jones</author></paper></bib>",
    "<bib><paper><title>torn tails</title><author>smith</author></paper></bib>",
];

const QUERIES: [&[&str]; 5] = [
    &["jones", "proximity"],
    &["royce", "ranking"],
    &["jones", "smith"],
    &["incremental", "jones"],
    &["torn", "tails"],
];

/// Thread counts to sweep (override with `XKW_EXEC_THREADS`).
fn exec_threads() -> Vec<usize> {
    match std::env::var("XKW_EXEC_THREADS") {
        Ok(s) => vec![s.parse().expect("XKW_EXEC_THREADS must be a usize")],
        Err(_) => vec![1, 2, 8],
    }
}

/// Both postings formats, unless `XKW_POSTINGS` pins one (in which case
/// `from_env` already resolves it and we honour the pin).
fn postings_formats() -> Vec<PostingsFormatKind> {
    match std::env::var("XKW_POSTINGS") {
        Ok(_) => vec![PostingsFormatKind::from_env()],
        Err(_) => vec![PostingsFormatKind::Raw, PostingsFormatKind::Packed],
    }
}

/// A fresh, collision-free WAL directory for one scenario.
fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "xkw-durability-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn load_base(wal_dir: Option<PathBuf>, threads: usize, format: PostingsFormatKind) -> XKeyword {
    XKeyword::load_xml(
        BASE,
        LoadOptions {
            exec_threads: threads,
            postings_format: format,
            wal_dir,
            ..LoadOptions::default()
        },
    )
    .unwrap()
}

/// An oracle bulk-loaded from BASE plus `docs`, absorbed into one graph
/// and classified against BASE's inferred TSS — no WAL, no incremental
/// path anywhere.
fn bulk_oracle(docs: &[&str]) -> XKeyword {
    let base = xkeyword::graph::parse(BASE).unwrap();
    let schema = xkeyword::graph::infer_schema(&base);
    let tss = xkeyword::graph::auto_mapping(&schema, &base).unwrap();
    let mut graph = base;
    for doc in docs {
        let frag = xkeyword::graph::parse(doc).unwrap();
        graph.absorb(&frag);
    }
    XKeyword::load(graph, tss, LoadOptions::default()).unwrap()
}

/// Canonical answers for every probe query.
fn canon(xk: &XKeyword) -> Vec<String> {
    QUERIES
        .iter()
        .map(|q| xk.canonical_results(q, 6).unwrap())
        .collect()
}

/// The fixed 4-record history of the crash matrix. Document ids are
/// deterministic: inserts take 1, 2, 3 in order.
#[derive(Clone, Copy, Debug)]
enum Op {
    Insert(usize),
    Delete(u64),
}

const HISTORY: [Op; 4] = [Op::Insert(0), Op::Insert(1), Op::Delete(1), Op::Insert(2)];

/// Net live documents after the first `n` records of [`HISTORY`].
fn live_after(n: usize) -> Vec<&'static str> {
    let mut live: Vec<(u64, &str)> = Vec::new();
    let mut next = 1u64;
    for op in &HISTORY[..n] {
        match op {
            Op::Insert(d) => {
                live.push((next, DOCS[*d]));
                next += 1;
            }
            Op::Delete(doc) => live.retain(|(id, _)| id != doc),
        }
    }
    live.into_iter().map(|(_, d)| d).collect()
}

fn apply(xk: &XKeyword, op: Op) -> Result<(), XkError> {
    match op {
        Op::Insert(d) => xk.insert_document(DOCS[d]).map(|_| ()),
        Op::Delete(doc) => xk.delete_document(doc),
    }
}

/// Property 1: crash the WAL at every record boundary × every WAL fault
/// kind × both postings formats × every thread count; the reopened
/// instance must answer byte-identically to a bulk-loaded oracle of the
/// surviving documents.
#[test]
fn crash_at_every_record_boundary_recovers_to_oracle() {
    // Oracle canonical answers depend only on the surviving prefix.
    let oracles: Vec<Vec<String>> = (0..=HISTORY.len())
        .map(|n| canon(&bulk_oracle(&live_after(n))))
        .collect();
    let kinds = [FaultKind::Crash, FaultKind::WalShort, FaultKind::WalTorn];
    for format in postings_formats() {
        for &kind in &kinds {
            // `at == HISTORY.len()` is the no-crash control run.
            #[allow(clippy::needless_range_loop)] // `at` is the fault index, not just a cursor
            for at in 0..=HISTORY.len() {
                let dir = fresh_dir(&format!("matrix-{format:?}-{kind:?}-{at}"));
                let xk = load_base(Some(dir.clone()), 1, format);
                if at < HISTORY.len() {
                    xk.set_wal_fault(Some(WalFault {
                        kind,
                        at: at as u64,
                    }));
                }
                for (i, &op) in HISTORY.iter().enumerate() {
                    let res = apply(&xk, op);
                    assert_eq!(
                        res.is_ok(),
                        i < at,
                        "{kind:?}@{at}: op {i} ({op:?}) -> {res:?}"
                    );
                }
                drop(xk);
                // A short/torn record litters the log tail — but only
                // until the first reopen truncates it.
                let mut tail_pending = at < HISTORY.len() && kind != FaultKind::Crash;
                for threads in exec_threads() {
                    let recovered = load_base(Some(dir.clone()), threads, format);
                    assert_eq!(
                        canon(&recovered),
                        oracles[at],
                        "{format:?} {kind:?} crash at record {at}, {threads} threads"
                    );
                    assert_eq!(recovered.documents().len(), live_after(at).len());
                    // Replayed records or a truncated tail count as a
                    // recovery; a clean empty log does not.
                    assert_eq!(
                        recovered.recoveries(),
                        u64::from(at > 0 || tail_pending),
                        "{kind:?}@{at}"
                    );
                    tail_pending = false;
                }
                let _ = std::fs::remove_dir_all(&dir);
            }
        }
    }
}

/// Property 2: a garbage tail appended to the log truncates on reopen —
/// the valid prefix replays in full and the file shrinks back to it.
#[test]
fn garbage_tail_is_truncated_not_trusted() {
    let dir = fresh_dir("garbage-tail");
    let xk = load_base(Some(dir.clone()), 1, PostingsFormatKind::from_env());
    xk.insert_document(DOCS[0]).unwrap();
    xk.insert_document(DOCS[1]).unwrap();
    let clean_bytes = xk.wal_stats().unwrap().bytes;
    drop(xk);

    let wal_path = dir.join(WAL_FILE);
    use std::io::Write as _;
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&wal_path)
        .unwrap();
    // A plausible-length header followed by junk that cannot checksum.
    f.write_all(&[0x10, 0, 0, 0]).unwrap();
    f.write_all(&[0xAB; 40]).unwrap();
    drop(f);

    let recovered = load_base(Some(dir.clone()), 1, PostingsFormatKind::from_env());
    assert_eq!(recovered.recoveries(), 1);
    assert_eq!(recovered.documents(), vec![1, 2]);
    assert_eq!(canon(&recovered), canon(&bulk_oracle(&[DOCS[0], DOCS[1]])));
    assert_eq!(
        std::fs::metadata(&wal_path).unwrap().len(),
        clean_bytes,
        "the garbage tail must be physically truncated"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Property 4: recovery and the write path are visible in published
/// metrics.
#[test]
fn recovery_and_wal_counters_are_published() {
    let dir = fresh_dir("metrics");
    let xk = load_base(Some(dir.clone()), 1, PostingsFormatKind::from_env());
    xk.insert_document(DOCS[0]).unwrap();
    xk.insert_document(DOCS[1]).unwrap();
    xk.delete_document(1).unwrap();
    let live = xkeyword::obs::Registry::new();
    xk.export_metrics(&live);
    assert_eq!(live.gauge("xkw_recoveries_total").get(), 0);
    assert_eq!(live.gauge("xkw_docs_total").get(), 1);
    assert_eq!(live.gauge("xkw_wal_appends_total").get(), 3);
    assert!(
        live.gauge("xkw_wal_fsyncs_total").get() >= 3,
        "FsyncPolicy::Always syncs every append"
    );
    drop(xk);

    let recovered = load_base(Some(dir.clone()), 1, PostingsFormatKind::from_env());
    let registry = xkeyword::obs::Registry::new();
    recovered.export_metrics(&registry);
    assert_eq!(registry.gauge("xkw_recoveries_total").get(), 1);
    assert_eq!(registry.gauge("xkw_docs_total").get(), 1);
    assert!(
        registry.gauge("xkw_wal_bytes").get() > 0,
        "the surviving log has bytes on disk"
    );
    let rendered = registry.render_prometheus();
    for name in [
        "xkw_recoveries_total",
        "xkw_docs_total",
        "xkw_wal_appends_total",
        "xkw_wal_bytes",
        "xkw_wal_fsyncs_total",
    ] {
        assert!(rendered.contains(name), "{name} missing from dump");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Property 3: any insert/delete history applied incrementally is
    /// indistinguishable from a from-scratch bulk rebuild of the net
    /// document set — across thread counts and postings formats.
    #[test]
    fn incremental_history_matches_bulk_rebuild(choices in prop::collection::vec(0usize..5, 1..8)) {
        // 0..3 insert DOCS[i]; 3 deletes the oldest live doc, 4 the
        // newest (both no-ops when nothing is live).
        for format in postings_formats() {
            for threads in exec_threads() {
                let xk = load_base(None, threads, format);
                let mut live: Vec<(u64, &str)> = Vec::new();
                let mut next = 1u64;
                for &c in &choices {
                    match c {
                        0..=2 => {
                            let doc = xk.insert_document(DOCS[c]).unwrap();
                            prop_assert_eq!(doc, next);
                            live.push((doc, DOCS[c]));
                            next += 1;
                        }
                        3 | 4 => {
                            if live.is_empty() {
                                continue;
                            }
                            let idx = if c == 3 { 0 } else { live.len() - 1 };
                            let (doc, _) = live.remove(idx);
                            xk.delete_document(doc).unwrap();
                        }
                        _ => unreachable!(),
                    }
                }
                let docs: Vec<&str> = live.iter().map(|&(_, d)| d).collect();
                let oracle = bulk_oracle(&docs);
                prop_assert_eq!(
                    canon(&xk),
                    canon(&oracle),
                    "history {:?} diverged from bulk rebuild ({:?}, {} threads)",
                    &choices, format, threads
                );
            }
        }
    }
}
