//! Decomposition laboratory: the §5 space/performance tradeoff, live.
//!
//! Loads the same DBLP-like dataset under each of the paper's five
//! decomposition configurations and reports, per configuration: fragment
//! count, stored id cells, disk pages, per-CTSSN join counts, and the
//! probes/IO a top-k query actually performs.
//!
//! ```sh
//! cargo run --release --example decomposition_lab
//! ```

#![allow(clippy::disallowed_macros)] // printing is this target's interface
use xkeyword::core::decompose::has_mvd;
use xkeyword::core::exec::{self, ExecMode};
use xkeyword::core::prelude::*;
use xkeyword::core::relations::PhysicalPolicy;
use xkeyword::core::xkeyword::DecompositionSpec;
use xkeyword::datagen::dblp::DblpConfig;

fn main() {
    let data_cfg = DblpConfig {
        conferences: 4,
        years_per_conference: 4,
        papers_per_year: 20,
        authors: 150,
        authors_per_paper: 3,
        citations_per_paper: 5,
        vocabulary: 250,
        seed: 99,
    };

    let configs: Vec<(&str, DecompositionSpec, PhysicalPolicy)> = vec![
        (
            "XKeyword",
            DecompositionSpec::XKeyword { m: 6, b: 2 },
            PhysicalPolicy::clustered(),
        ),
        (
            "Complete",
            DecompositionSpec::Complete { l: 2 },
            PhysicalPolicy::clustered(),
        ),
        (
            "MinClust",
            DecompositionSpec::Minimal,
            PhysicalPolicy::clustered(),
        ),
        (
            "MinNClustIndx",
            DecompositionSpec::Minimal,
            PhysicalPolicy::indexed(),
        ),
        (
            "MinNClustNIndx",
            DecompositionSpec::Minimal,
            PhysicalPolicy::bare(),
        ),
    ];

    println!(
        "{:<16}{:>6}{:>6}{:>12}{:>8}{:>10}{:>10}{:>10}",
        "decomposition", "frags", "MVD", "id-cells", "pages", "joins", "probes", "io"
    );
    for (name, spec, policy) in configs {
        let d = data_cfg.generate();
        let xk = XKeyword::load(
            d.graph,
            d.tss,
            LoadOptions {
                decomposition: spec,
                policy,
                pool_pages: 1024,
                build_blobs: false,
                ..LoadOptions::default()
            },
        )
        .unwrap();
        let mvd = xk
            .catalog()
            .decomposition
            .fragments
            .iter()
            .filter(|f| has_mvd(&f.tree, &xk.tss))
            .count();
        let plans = xk.plans(&["surname3", "surname7"], 8);
        let joins: usize = plans.iter().map(|p| p.joins()).sum();
        let io_before = xk.db.io();
        let res = exec::topk(
            &xk.db,
            &xk.catalog(),
            &plans,
            ExecMode::Cached { capacity: 8192 },
            20,
            4,
        );
        let io = xk.db.io().since(io_before);
        println!(
            "{:<16}{:>6}{:>6}{:>12}{:>8}{:>10}{:>10}{:>10}",
            name,
            xk.catalog().decomposition.fragments.len(),
            mvd,
            xk.catalog().space_cells(),
            xk.db.disk_pages(),
            joins,
            res.stats.probes,
            io.logical(),
        );
    }
    println!("\n(joins = total over all candidate networks of the query;");
    println!(" probes/io measured for a cached top-20 of \"surname3 surname7\")");
}
