//! Zero-configuration keyword search over ad-hoc XML: no schema, no TSS
//! design — everything is inferred from the document.
//!
//! ```sh
//! cargo run --example load_xml
//! ```

#![allow(clippy::disallowed_macros)] // printing is this target's interface
use xkeyword::core::exec::ExecMode;
use xkeyword::core::prelude::*;

const LIBRARY_XML: &str = r#"
<library>
  <shelf><topic>databases</topic>
    <book id="b1"><title>Query Processing on Labeled Graphs</title><isbn>11</isbn>
      <author idref="a1"/><author idref="a2"/>
    </book>
    <book id="b2"><title>Keyword Search over Semistructured Data</title><isbn>12</isbn>
      <author idref="a2"/>
      <cites idref="b1"/>
    </book>
  </shelf>
  <shelf><topic>systems</topic>
    <book id="b3"><title>Buffer Pools in Anger</title><isbn>13</isbn>
      <author idref="a3"/>
      <cites idref="b2"/>
    </book>
  </shelf>
</library>
<writer id="a1"><name>Ada</name><country>UK</country></writer>
<writer id="a2"><name>Erhard</name><country>DE</country></writer>
<writer id="a3"><name>Priya</name><country>IN</country></writer>
"#;

fn main() {
    let xk = XKeyword::load_xml(LIBRARY_XML, LoadOptions::default())
        .expect("schema and segments inferred from the document");

    println!("Inferred design:");
    for t in xk.tss.node_ids() {
        let n = xk.tss.node(t);
        let members: Vec<&str> = n.members.iter().map(|&m| xk.tss.schema().tag(m)).collect();
        println!("  segment {:<10} = {{{}}}", n.name, members.join(", "));
    }
    let dummies: Vec<&str> = xk
        .tss
        .schema()
        .node_ids()
        .filter(|&s| xk.tss.is_dummy(s))
        .map(|s| xk.tss.schema().tag(s))
        .collect();
    println!("  dummy connectors: {{{}}}", dummies.join(", "));

    for query in [
        vec!["ada", "erhard"],      // co-authors of b1
        vec!["priya", "ada"],       // connected only through the citation chain
        vec!["databases", "anger"], // topic to a book in another shelf
    ] {
        println!("\nquery: {query:?}");
        let res = xk.query_all(&query, 10, ExecMode::Cached { capacity: 2048 });
        let mut ranked = res.mttons();
        ranked.sort_by_key(|m| m.score);
        for m in ranked.iter().take(4) {
            let labels: Vec<String> = m.tos.iter().map(|&t| xk.label(t)).collect();
            println!("  size {:>2}: {}", m.score, labels.join(" — "));
        }
        if ranked.is_empty() {
            println!("  (no connection within size 10)");
        }
    }
}
