//! DBLP-style search: the paper's demo scenario — find how two authors
//! are connected (co-authorship, citation chains, shared venues) with a
//! plain two-keyword query, presented as a ranked result list.
//!
//! ```sh
//! cargo run --release --example dblp_search [surname1 surname2]
//! ```

#![allow(clippy::disallowed_macros)] // printing is this target's interface
use std::time::Instant;
use xkeyword::core::exec::ExecMode;
use xkeyword::core::prelude::*;
use xkeyword::core::xkeyword::DecompositionSpec;
use xkeyword::datagen::dblp::DblpConfig;

fn main() {
    let t = Instant::now();
    let data = DblpConfig {
        conferences: 4,
        years_per_conference: 4,
        papers_per_year: 25,
        authors: 200,
        authors_per_paper: 3,
        citations_per_paper: 6,
        vocabulary: 300,
        seed: 42,
    }
    .generate();
    println!(
        "Generated DBLP-like data: {} nodes, {} edges ({:?})",
        data.graph.node_count(),
        data.graph.edge_count(),
        t.elapsed()
    );

    let t = Instant::now();
    let xk = XKeyword::load(
        data.graph,
        data.tss,
        LoadOptions {
            decomposition: DecompositionSpec::XKeyword { m: 6, b: 2 },
            ..LoadOptions::default()
        },
    )
    .unwrap();
    println!(
        "Load stage: {} target objects, {} relations, {} keywords indexed ({:?})",
        xk.targets().len(),
        xk.catalog().len(),
        xk.master().keyword_count(),
        t.elapsed()
    );

    // Query: two author surnames (defaults chosen to be connected).
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (a, b) = if args.len() == 2 {
        (args[0].clone(), args[1].clone())
    } else {
        ("surname3".to_owned(), "surname7".to_owned())
    };
    println!(
        "\nquery: \"{a} {b}\"  (containing lists: {} and {})",
        xk.master().containing_list(&a).len(),
        xk.master().containing_list(&b).len()
    );

    let t = Instant::now();
    let plans = xk.plans(&[&a, &b], 8);
    println!(
        "{} candidate networks up to Z = 8 ({:?})",
        plans.len(),
        t.elapsed()
    );

    let t = Instant::now();
    let k = 10;
    let res = xk.query_topk(&[&a, &b], 8, k, ExecMode::Cached { capacity: 8192 }, 4);
    println!(
        "top-{k} in {:?} ({} probes)\n",
        t.elapsed(),
        res.stats.probes
    );

    let mut rows = res.rows.clone();
    rows.sort_by_key(|r| r.score);
    for (i, r) in rows.iter().enumerate() {
        let plan = &plans[r.plan];
        // Render the result with the TSS edges' semantic annotations.
        let steps: Vec<String> = plan
            .ctssn
            .tree
            .edges
            .iter()
            .map(|e| {
                let te = xk.tss.edge(e.edge);
                format!(
                    "{} —{}→ {}",
                    xk.label(r.assignment[e.a as usize]),
                    te.forward_desc,
                    xk.label(r.assignment[e.b as usize])
                )
            })
            .collect();
        println!("{:>2}. size {:>2}: {}", i + 1, r.score, steps.join("; "));
    }
}
