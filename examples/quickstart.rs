//! Quickstart: load the paper's Figure 1 document and run the keyword
//! query "John, VCR" from §1.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

#![allow(clippy::disallowed_macros)] // printing is this target's interface
use xkeyword::core::exec::ExecMode;
use xkeyword::core::prelude::*;
use xkeyword::core::xkeyword::DecompositionSpec;
use xkeyword::datagen::tpch;

fn main() {
    // 1. The data: the paper's Figure 1 XML graph (persons, orders,
    //    lineitems, parts with subparts, a product, a service call).
    let (graph, _, _) = tpch::figure1();
    println!(
        "Figure 1 graph: {} nodes, {} edges",
        graph.node_count(),
        graph.edge_count()
    );

    // 2. The load stage: target-object decomposition, master index,
    //    BLOBs and connection relations of the Fig. 12 decomposition.
    let xk = XKeyword::load(
        graph,
        tpch::tss_graph(),
        LoadOptions {
            decomposition: DecompositionSpec::XKeyword { m: 6, b: 2 },
            ..LoadOptions::default()
        },
    )
    .expect("Figure 1 conforms to the TPC-H schema");
    println!(
        "Loaded: {} target objects, {} connection relations, {} disk pages",
        xk.targets().len(),
        xk.catalog().len(),
        xk.db.disk_pages()
    );

    // 3. A keyword proximity query: just two keywords, no schema
    //    knowledge required.
    let keywords = ["john", "vcr"];
    let z = 8; // maximum result size the user cares about
    let res = xk.query_all(&keywords, z, ExecMode::Cached { capacity: 1024 });

    println!("\nResults for {keywords:?} (smaller size = closer connection):");
    let mut ranked = res.mttons();
    ranked.sort_by_key(|m| m.score);
    for m in &ranked {
        let labels: Vec<String> = m.tos.iter().map(|&t| xk.label(t)).collect();
        println!("  size {:>2}: {}", m.score, labels.join(" — "));
    }

    // 4. Target objects come with their XML fragments (BLOBs).
    let best = res
        .mttons()
        .into_iter()
        .min_by_key(|m| m.score)
        .expect("John supplied a VCR product");
    println!("\nTarget objects of the best result:");
    for &t in &best.tos {
        println!("  {}", xk.blob(t).unwrap());
    }

    println!(
        "\nstats: {} probes, {} rows fetched, {} results",
        res.stats.probes, res.stats.rows, res.stats.results
    );
}
