//! Interactive-result-graph walkthrough (§3.2, Figure 3): instead of a
//! flood of near-duplicate results, XKeyword shows one result per
//! candidate network and lets the user expand/contract node by node.
//! This example scripts the navigation of Figure 3 on the Figure 2 data:
//! the "US, VCR" query whose four results N1..N4 differ only in which
//! lineitem and which VCR subpart they use.
//!
//! ```sh
//! cargo run --example tpch_explore
//! ```

#![allow(clippy::disallowed_macros)] // printing is this target's interface
use xkeyword::core::exec::{ExecMode, PartialCache};
use xkeyword::core::prelude::*;
use xkeyword::core::xkeyword::DecompositionSpec;
use xkeyword::datagen::tpch;

fn main() {
    let (graph, _, _) = tpch::figure1();
    // The on-demand expansion uses the combination of the inlined and
    // minimal decompositions, per §6.
    let xk = XKeyword::load(
        graph,
        tpch::tss_graph(),
        LoadOptions {
            decomposition: DecompositionSpec::Combined { m: 6, b: 2 },
            ..LoadOptions::default()
        },
    )
    .unwrap();

    let kws = ["us", "vcr"];
    let plans = xk.plans(&kws, 8);
    println!("{} candidate networks for {kws:?}", plans.len());

    // The Figure 2 candidate network: Person—Lineitem—Part—Part via the
    // supplier edge. The list presentation would print all four N1..N4;
    // the presentation graph starts with just one.
    let full = xk.query_all(&kws, 8, ExecMode::Naive);
    let li = seg(&xk, "Lineitem");
    let person = seg(&xk, "Person");
    let supplier_edge = xk.tss.find_edge(li, person).unwrap();
    let fig2: Vec<usize> = (0..plans.len())
        .filter(|&i| {
            plans[i].ctssn.size() == 3
                && plans[i]
                    .ctssn
                    .tree
                    .edges
                    .iter()
                    .any(|e| e.edge == supplier_edge)
        })
        .collect();
    let (pi, mut pg) = fig2
        .iter()
        .find_map(|&i| xk.initial_presentation(&plans, i).map(|p| (i, p)))
        .expect("the Figure 2 CN has results");
    let n_results = full.rows.iter().filter(|r| r.plan == pi).count();
    println!(
        "Figure 2 CN [{}] has {n_results} raw results; the list view would show all of them.",
        plans[pi].ctssn.display(&xk.tss)
    );

    println!("\n— PG0: one arbitrarily chosen result —");
    print!("{}", xk.render_presentation(&plans, &pg));

    let mut cache = PartialCache::new(4096);

    // Fig. 3(b): click the lineitem node → both lineitems appear.
    let li_role = role_of(&xk, &plans[pi], "Lineitem");
    xk.expand(&kws, &plans, &mut pg, li_role, &mut cache);
    println!("\n— after expanding the Lineitem node (Fig. 3b) —");
    print!("{}", xk.render_presentation(&plans, &pg));

    // Expand the VCR part role too: both subparts appear.
    let vcr_role = (0..plans[pi].role_count() as u8)
        .rfind(|&r| {
            xk.tss.node(plans[pi].ctssn.tree.roles[r as usize]).name == "Part"
                && plans[pi].candidates[r as usize].is_some()
        })
        .unwrap();
    xk.expand(&kws, &plans, &mut pg, vcr_role, &mut cache);
    println!("\n— after expanding the VCR Part node —");
    print!("{}", xk.render_presentation(&plans, &pg));

    // Fig. 3(c): contract back onto one lineitem.
    let keep = pg.nodes_of_role(li_role)[0];
    pg.contract((li_role, keep));
    println!("\n— after contracting onto one Lineitem (Fig. 3c) —");
    print!("{}", xk.render_presentation(&plans, &pg));

    assert!(pg.invariant_holds());
    println!("\ninvariant holds: every displayed node lies on a complete result");
}

fn seg(xk: &XKeyword, name: &str) -> xkeyword::graph::TssId {
    xk.tss
        .node_ids()
        .find(|&i| xk.tss.node(i).name == name)
        .unwrap()
}

fn role_of(xk: &XKeyword, plan: &xkeyword::core::optimizer::CtssnPlan, seg_name: &str) -> u8 {
    (0..plan.role_count() as u8)
        .find(|&r| xk.tss.node(plan.ctssn.tree.roles[r as usize]).name == seg_name)
        .unwrap()
}
